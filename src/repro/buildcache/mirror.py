"""Mirror groups: an ordered list of buildcaches, consulted in order.

This is the substitutes model of Guix ("Reproducible and
User-Controlled Software Environments in HPC with Guix") applied to the
paper's Section 6 evaluation, which runs against *two* caches at once —
a small local buildcache and a ~20k-spec public one.  A
:class:`MirrorGroup` composes any number of :class:`~repro.buildcache.
cache.BuildCache` instances into one cache-shaped object:

* **reads** (``in`` / ``meta`` / ``fetch`` / ``has_payload``) are
  first-hit-wins down the mirror list;
* ``all_specs`` is the union over all mirrors, de-duplicated by
  ``dag_hash`` with the *first* mirror that indexes a hash winning —
  so the concretizer's reuse corpus spans every mirror;
* **writes** (``push`` / ``save_index``) go to the primary (the first
  mirror) only — the local scratch cache, never the public one;
* a mirror that fails **transiently** (:class:`~repro.buildcache.
  backend.TransientBackendError`, e.g. a simulated timeout) is retried
  with exponential backoff, then the group *degrades* to the next
  mirror instead of failing the install;
* a mirror whose index advertises a hash but whose payload fetch then
  fails (the "index says yes, blob 404s" pathology of real binary
  mirrors) falls through to the next mirror and bumps the
  ``buildcache.mirror_fallbacks`` counter.

**The merged view** (the federated-index layer, ROADMAP "kill the
741 ms union"): the group keeps one cached union of per-mirror spec-
hash sets, keyed on the tuple of the mirrors' index state tokens
(manifest digest + in-memory revision).  Each mirror's hash set comes
from its index's summary sidecar when the summary is exact (zero shard
reads) and a one-time full walk otherwise, and is re-collected only
when that mirror's token moves — an unchanged mirror is *never*
re-walked, an in-process ``push`` (journal overlay, no ``save_index``
yet) bumps the primary's token so ``len(group)`` stays exact, and
:meth:`MirrorGroup.refresh` picks up other writers' saves by
delta-reloading only their changed shards.  Every membership question
— ``in``, the miss legs of ``meta``/``fetch``, ``__len__``,
``__iter__``, ``all_specs`` — is answered from the view in O(1)
against set lookups, independent of mirror count and spec count, with
*zero* backend round-trips on negative lookups.  Mirrors whose hash
set could not be collected (every retry failed) stay outside the view
and degrade to the legacy per-mirror walk, so the view never turns a
flaky mirror into a wrong "no".

Observability: every read runs under a ``buildcache.mirror_fetch`` /
``buildcache.mirror_lookup`` span carrying the serving mirror's label,
view rebuilds run under ``buildcache.mirror_union_rebuild`` (with how
many mirrors actually re-collected), and per-mirror counters
``buildcache.mirror_{hits,misses,fallbacks,retries}.<label>`` (plus
label-less aggregates) make the fallback behaviour visible in
``--profile`` output and bench JSON.

The group quacks like a single ``BuildCache`` — ``Installer(caches=
[group])`` and the pipelined :class:`~repro.installer.parallel.
PayloadPrefetcher` work unchanged, with ``CachedPayload.source``
carrying which mirror actually served each payload.
"""

from __future__ import annotations

import logging
import time
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
)

from ..obs import metrics, trace
from ..spec import Spec
from .backend import BuildCacheError, TransientBackendError
from .cache import BuildCache, CachedPayload

__all__ = ["MirrorGroup"]

logger = logging.getLogger(__name__)

T = TypeVar("T")

#: the process-wide backoff clock.  Every group constructed without an
#: explicit ``sleep`` reads this *at call time*, so tests (and the
#: ``--fetch-jobs`` retry suite) monkeypatch one module attribute and
#: every MirrorGroup anywhere — including the ones the CLI builds
#: internally — goes fake-clock: no wall-clock backoff ever runs while
#: HTTP/simulated transient faults are being exercised.
_default_sleep: Callable[[float], None] = time.sleep


class _MergedView:
    """One immutable union snapshot over the group's mirrors.

    ``sets[i]`` is mirror *i*'s exact spec-hash set, or ``None`` when
    that mirror could not be enumerated (it degraded); ``complete``
    means every mirror contributed, so a miss against ``union`` is a
    definitive miss for the whole group.
    """

    __slots__ = ("tokens", "sets", "union", "complete")

    def __init__(
        self,
        tokens: Tuple,
        sets: List[Optional[FrozenSet[str]]],
    ):
        self.tokens = tokens
        self.sets = sets
        self.union: FrozenSet[str] = frozenset().union(
            *(s for s in sets if s is not None)
        )
        self.complete = all(s is not None for s in sets)


class MirrorGroup:
    """An ordered list of buildcaches with first-hit-wins fallback.

    ``retries`` is the number of *extra* attempts per mirror when an
    operation raises :class:`TransientBackendError`; ``backoff`` is the
    base delay in seconds, doubled per retry (tests pass 0).  ``sleep``
    injects the delay clock (tests pass a recorder); when omitted, the
    module-level :data:`_default_sleep` is consulted at call time, so
    monkeypatching it reaches groups constructed by the CLI too.
    """

    def __init__(
        self,
        mirrors: Sequence[BuildCache],
        retries: int = 2,
        backoff: float = 0.05,
        sleep: Optional[Callable[[float], None]] = None,
    ):
        if not mirrors:
            raise BuildCacheError("a MirrorGroup needs at least one mirror")
        self.mirrors: List[BuildCache] = list(mirrors)
        self.retries = max(int(retries), 0)
        self.backoff = float(backoff)
        self._sleep = sleep
        labels = [m.label for m in self.mirrors]
        if len(set(labels)) != len(labels):
            raise BuildCacheError(
                f"mirror labels must be unique, got {labels} "
                "(pass name=... to BuildCache)"
            )
        self._by_label: Dict[str, BuildCache] = {
            m.label: m for m in self.mirrors
        }
        #: per-mirror (state token, hash set) memo: an unchanged mirror
        #: is never re-enumerated across view rebuilds
        self._hash_sets: Dict[str, Tuple[object, FrozenSet[str]]] = {}
        self._view: Optional[_MergedView] = None

    @property
    def primary(self) -> BuildCache:
        """The write target: the first mirror in the list."""
        return self.mirrors[0]

    @property
    def label(self) -> str:
        return "+".join(m.label for m in self.mirrors)

    # ------------------------------------------------------------------
    # retry / degrade machinery
    # ------------------------------------------------------------------
    def _with_retries(self, mirror: BuildCache, fn: Callable[[], T]) -> T:
        """Run ``fn``, retrying transient faults with backoff.

        Only :class:`TransientBackendError` is retried — corruption and
        missing blobs are deterministic, retrying them wastes
        round-trips.  The loop is bounded to ``retries + 1`` attempts;
        the final failure re-raises immediately — no trailing backoff
        sleep, and no ``mirror_retries`` bump for a retry that never
        happens (exhaustion is the *caller's* fallback, counted there).
        """
        for attempt in range(self.retries + 1):
            try:
                return fn()
            except TransientBackendError as e:
                if attempt >= self.retries:
                    raise
                metrics.inc("buildcache.mirror_retries")
                metrics.inc(f"buildcache.mirror_retries.{mirror.label}")
                delay = self.backoff * (2 ** attempt)
                logger.debug(
                    "mirror %s: transient fault (%s), retry %d/%d in %.3fs",
                    mirror.label, e, attempt + 1, self.retries, delay,
                )
                if delay > 0:
                    (self._sleep or _default_sleep)(delay)
        raise AssertionError("unreachable: the loop returns or raises")

    def _fallback(self, mirror: BuildCache, op: str, error: Exception) -> None:
        metrics.inc("buildcache.mirror_fallbacks")
        metrics.inc(f"buildcache.mirror_fallbacks.{mirror.label}")
        logger.warning(
            "mirror %s failed during %s (%s) — degrading to the next mirror",
            mirror.label, op, error,
        )

    # ------------------------------------------------------------------
    # the cached merged view
    # ------------------------------------------------------------------
    def _merged_view(self) -> _MergedView:
        """The union snapshot, rebuilt only for mirrors whose state
        token moved.  A mirror that fails enumeration contributes
        ``None`` (degrade) and gets a fresh unique token so the next
        call re-attempts it — a flaky mirror is retried, a healthy
        unchanged one is never re-walked."""
        tokens = []
        for mirror in self.mirrors:
            cached = self._hash_sets.get(mirror.label)
            token = mirror.state_token()
            if cached is not None and cached[1] is None:
                token = object()  # failed last time: force a re-attempt
            tokens.append(token)
        tokens = tuple(tokens)
        view = self._view
        if view is not None and view.tokens == tokens:
            return view
        with trace.span(
            "buildcache.mirror_union_rebuild", mirrors=len(self.mirrors)
        ) as sp:
            sets: List[Optional[FrozenSet[str]]] = []
            fresh_tokens = []
            rebuilt = 0
            for mirror in self.mirrors:
                token = mirror.state_token()
                cached = self._hash_sets.get(mirror.label)
                if cached is not None and cached[0] == token and cached[1] is not None:
                    fresh_tokens.append(token)
                    sets.append(cached[1])
                    continue
                try:
                    hashes = frozenset(
                        self._with_retries(mirror, mirror.spec_hash_set)
                    )
                except BuildCacheError as e:
                    self._fallback(mirror, "union", e)
                    self._hash_sets[mirror.label] = (token, None)
                    fresh_tokens.append(object())
                    sets.append(None)
                    continue
                # re-read the token: enumeration itself cannot mutate
                # the index, but pairing the set with the token taken
                # before the walk keeps the memo conservative
                self._hash_sets[mirror.label] = (token, hashes)
                fresh_tokens.append(token)
                sets.append(hashes)
                rebuilt += 1
            view = _MergedView(tuple(fresh_tokens), sets)
            self._view = view
            sp.set(rebuilt=rebuilt, specs=len(view.union),
                   complete=view.complete)
        metrics.inc("buildcache.mirror_union_rebuilds")
        return view

    def refresh(self) -> int:
        """Ask every mirror to delta-reload its index from storage
        (:meth:`BuildCache.refresh_index`): an unchanged manifest
        digest is a no-op, a changed one invalidates only its dirty
        shards, and the merged view rebuilds lazily for exactly the
        mirrors that moved.  Returns total shards invalidated."""
        total = 0
        for mirror in self.mirrors:
            try:
                total += self._with_retries(mirror, mirror.refresh_index)
            except BuildCacheError as e:
                self._fallback(mirror, "refresh", e)
        return total

    def _degraded_mirrors(self, view: _MergedView):
        return [
            mirror
            for mirror, hashes in zip(self.mirrors, view.sets)
            if hashes is None
        ]

    # ------------------------------------------------------------------
    # first-hit-wins reads
    # ------------------------------------------------------------------
    def __contains__(self, dag_hash: str) -> bool:
        view = self._merged_view()
        if dag_hash in view.union:
            return True
        if view.complete:
            return False  # summary-answered negative: zero backend ops
        for mirror in self._degraded_mirrors(view):
            try:
                if self._with_retries(mirror, lambda: dag_hash in mirror):
                    return True
            except BuildCacheError as e:
                self._fallback(mirror, "lookup", e)
        return False

    def has_payload(self, dag_hash: str) -> bool:
        view = self._merged_view()
        for mirror, hashes in zip(self.mirrors, view.sets):
            # payloads can exist without index entries (a stale index),
            # so only a *complete* view's miss skips the mirror probe
            if hashes is not None and dag_hash not in hashes:
                continue
            try:
                if self._with_retries(
                    mirror, lambda: mirror.has_payload(dag_hash)
                ):
                    return True
            except BuildCacheError as e:
                self._fallback(mirror, "has_payload", e)
        return False

    def meta(self, dag_hash: str) -> dict:
        with trace.span("buildcache.mirror_lookup", hash=dag_hash[:7]) as sp:
            view = self._merged_view()
            for mirror, hashes in zip(self.mirrors, view.sets):
                try:
                    if hashes is not None:
                        if dag_hash not in hashes:
                            continue  # view-answered miss: zero ops
                    elif not self._with_retries(
                        mirror, lambda: dag_hash in mirror
                    ):
                        continue
                    document = self._with_retries(
                        mirror, lambda: mirror.meta(dag_hash)
                    )
                except BuildCacheError as e:
                    self._fallback(mirror, "meta", e)
                    continue
                sp.set(mirror=mirror.label)
                return document
        raise BuildCacheError(
            f"cache entry {dag_hash} has no metadata on any mirror "
            f"({self.label})"
        )

    def fetch(self, dag_hash: str) -> CachedPayload:
        """Fetch the payload from the first mirror that can serve it.

        Mirrors whose merged-view hash set excludes the hash are
        skipped without any round-trip; a mirror whose index advertises
        the hash but whose payload fetch fails — missing blob,
        exhausted retries, corrupt entry — is *not* fatal: the group
        falls through and only raises when every mirror has been tried.
        """
        with trace.span(
            "buildcache.mirror_fetch",
            hash=dag_hash[:7], mirrors=len(self.mirrors),
        ) as sp:
            view = self._merged_view()
            last_error: Optional[Exception] = None
            for mirror, hashes in zip(self.mirrors, view.sets):
                if hashes is not None:
                    if dag_hash not in hashes:
                        metrics.inc("buildcache.mirror_misses")
                        metrics.inc(f"buildcache.mirror_misses.{mirror.label}")
                        continue
                else:
                    try:
                        indexed = self._with_retries(
                            mirror, lambda: dag_hash in mirror
                        )
                    except BuildCacheError as e:
                        self._fallback(mirror, "lookup", e)
                        last_error = e
                        continue
                    if not indexed:
                        metrics.inc("buildcache.mirror_misses")
                        metrics.inc(f"buildcache.mirror_misses.{mirror.label}")
                        continue
                try:
                    payload = self._with_retries(
                        mirror, lambda: mirror.fetch(dag_hash)
                    )
                except BuildCacheError as e:
                    # index hit, payload unfetchable: the classic
                    # stale-mirror pathology — fall through
                    self._fallback(mirror, "fetch", e)
                    last_error = e
                    continue
                metrics.inc("buildcache.mirror_hits")
                metrics.inc(f"buildcache.mirror_hits.{mirror.label}")
                sp.set(mirror=mirror.label, bytes=payload.size)
                return payload
        detail = f" (last error: {last_error})" if last_error else ""
        raise BuildCacheError(
            f"no mirror in {self.label} could serve cache entry "
            f"{dag_hash}{detail}"
        )

    # ------------------------------------------------------------------
    # union enumeration (all through the cached merged view)
    # ------------------------------------------------------------------
    def _union_hashes(self) -> Set[str]:
        """Every indexed hash across the group; degraded mirrors fall
        back to a direct walk so the union is never silently short."""
        view = self._merged_view()
        if view.complete:
            return set(view.union)
        seen = set(view.union)
        for mirror in self._degraded_mirrors(view):
            try:
                seen.update(self._with_retries(mirror, lambda: set(mirror)))
            except BuildCacheError as e:
                self._fallback(mirror, "union", e)
        return seen

    def spec_hash_set(self) -> frozenset:
        """Duck-type parity with :meth:`BuildCache.spec_hash_set` (a
        group can itself be a mirror of a larger federation)."""
        view = self._merged_view()
        if view.complete:
            return view.union  # already an immutable frozenset
        return frozenset(self._union_hashes())

    def all_specs(self) -> List[Spec]:
        """Union of every mirror's reusable specs, de-duplicated by
        ``dag_hash`` — the first mirror indexing a hash provides its
        document (so a local override shadows the public copy)."""
        specs: List[Spec] = []
        with trace.span(
            "buildcache.mirror_all_specs", mirrors=len(self.mirrors)
        ) as sp:
            view = self._merged_view()
            remaining = self._union_hashes()
            for mirror, hashes in zip(self.mirrors, view.sets):
                if not remaining:
                    break
                if hashes is None:
                    try:
                        hashes = frozenset(
                            self._with_retries(mirror, lambda: set(mirror))
                        )
                    except BuildCacheError as e:
                        self._fallback(mirror, "all_specs", e)
                        continue
                serving = sorted(remaining & hashes)
                if not serving:
                    continue
                try:
                    mirror_specs = [
                        self._with_retries(
                            mirror, lambda h=h: mirror.materialize_spec(h)
                        )
                        for h in serving
                    ]
                except BuildCacheError as e:
                    self._fallback(mirror, "all_specs", e)
                    continue
                specs.extend(mirror_specs)
                remaining.difference_update(serving)
            sp.set(specs=len(specs))
        return specs

    def __len__(self) -> int:
        view = self._merged_view()
        if view.complete:
            return len(view.union)  # no O(n) copy on the warm path
        return len(self._union_hashes())

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._union_hashes()))

    # ------------------------------------------------------------------
    # verify / extract dispatch to the serving mirror
    # ------------------------------------------------------------------
    def _serving(self, payload: CachedPayload) -> BuildCache:
        """The mirror that produced ``payload`` (by its ``source``
        label), defaulting to the primary for foreign payloads."""
        if payload.source is not None:
            mirror = self._by_label.get(payload.source)
            if mirror is not None:
                return mirror
        return self.primary

    def verify_payload(self, payload: CachedPayload) -> CachedPayload:
        # verification re-reads the entry's manifest/meta from the
        # serving mirror's backend, so HTTP transient faults can surface
        # here too (the prefetch pipeline calls this off-thread) —
        # route it through the same retry seam as every other read
        serving = self._serving(payload)
        return self._with_retries(
            serving, lambda: serving.verify_payload(payload)
        )

    def extract_payload(
        self,
        payload: CachedPayload,
        prefix,
        extra_prefix_map: Optional[Dict[str, str]] = None,
    ):
        serving = self._serving(payload)
        return self._with_retries(
            serving,
            lambda: serving.extract_payload(
                payload, prefix, extra_prefix_map=extra_prefix_map
            ),
        )

    def extract(
        self,
        dag_hash: str,
        prefix,
        extra_prefix_map: Optional[Dict[str, str]] = None,
    ):
        payload = self.fetch(dag_hash)
        serving = self._serving(payload)
        if serving.trust is not None:
            self.verify_payload(payload)
        return self.extract_payload(
            payload, prefix, extra_prefix_map=extra_prefix_map
        )

    # ------------------------------------------------------------------
    # push-to-primary writes
    # ------------------------------------------------------------------
    def push(self, spec, prefix, dep_prefixes: Optional[Dict[str, str]] = None):
        """Writes always target the primary mirror; a read-only primary
        surfaces the backend's clear :class:`~repro.buildcache.backend.
        ReadOnlyBackendError`-derived message instead of a partial
        write further down.  The primary's state token moves with the
        push, so the merged view (and ``len(group)``) reflects it
        without any ``save_index``."""
        return self.primary.push(spec, prefix, dep_prefixes=dep_prefixes)

    def save_index(self) -> None:
        self.primary.save_index()

    @property
    def trust(self):
        """The primary's trust policy (duck-type parity with
        ``BuildCache``; per-payload verification dispatches to the
        serving mirror's own policy)."""
        return self.primary.trust

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"<MirrorGroup [{', '.join(m.label for m in self.mirrors)}] "
            f"retries={self.retries}>"
        )
