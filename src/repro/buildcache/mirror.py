"""Mirror groups: an ordered list of buildcaches, consulted in order.

This is the substitutes model of Guix ("Reproducible and
User-Controlled Software Environments in HPC with Guix") applied to the
paper's Section 6 evaluation, which runs against *two* caches at once —
a small local buildcache and a ~20k-spec public one.  A
:class:`MirrorGroup` composes any number of :class:`~repro.buildcache.
cache.BuildCache` instances into one cache-shaped object:

* **reads** (``in`` / ``meta`` / ``fetch`` / ``has_payload``) are
  first-hit-wins down the mirror list;
* ``all_specs`` is the union over all mirrors, de-duplicated by
  ``dag_hash`` with the *first* mirror that indexes a hash winning —
  so the concretizer's reuse corpus spans every mirror;
* **writes** (``push`` / ``save_index``) go to the primary (the first
  mirror) only — the local scratch cache, never the public one;
* a mirror that fails **transiently** (:class:`~repro.buildcache.
  backend.TransientBackendError`, e.g. a simulated timeout) is retried
  with exponential backoff, then the group *degrades* to the next
  mirror instead of failing the install;
* a mirror whose index advertises a hash but whose payload fetch then
  fails (the "index says yes, blob 404s" pathology of real binary
  mirrors) falls through to the next mirror and bumps the
  ``buildcache.mirror_fallbacks`` counter.

Observability: every read runs under a ``buildcache.mirror_fetch`` /
``buildcache.mirror_lookup`` span carrying the serving mirror's label,
and per-mirror counters ``buildcache.mirror_{hits,misses,fallbacks,
retries}.<label>`` (plus label-less aggregates) make the fallback
behaviour visible in ``--profile`` output and bench JSON.

The group quacks like a single ``BuildCache`` — ``Installer(caches=
[group])`` and the pipelined :class:`~repro.installer.parallel.
PayloadPrefetcher` work unchanged, with ``CachedPayload.source``
carrying which mirror actually served each payload.
"""

from __future__ import annotations

import logging
import time
from typing import Callable, Dict, Iterator, List, Optional, Sequence, TypeVar

from ..obs import metrics, trace
from ..spec import Spec
from .backend import BuildCacheError, TransientBackendError
from .cache import BuildCache, CachedPayload

__all__ = ["MirrorGroup"]

logger = logging.getLogger(__name__)

T = TypeVar("T")


class MirrorGroup:
    """An ordered list of buildcaches with first-hit-wins fallback.

    ``retries`` is the number of *extra* attempts per mirror when an
    operation raises :class:`TransientBackendError`; ``backoff`` is the
    base delay in seconds, doubled per retry (tests pass 0).
    """

    def __init__(
        self,
        mirrors: Sequence[BuildCache],
        retries: int = 2,
        backoff: float = 0.05,
    ):
        if not mirrors:
            raise BuildCacheError("a MirrorGroup needs at least one mirror")
        self.mirrors: List[BuildCache] = list(mirrors)
        self.retries = max(int(retries), 0)
        self.backoff = float(backoff)
        labels = [m.label for m in self.mirrors]
        if len(set(labels)) != len(labels):
            raise BuildCacheError(
                f"mirror labels must be unique, got {labels} "
                "(pass name=... to BuildCache)"
            )
        self._by_label: Dict[str, BuildCache] = {
            m.label: m for m in self.mirrors
        }

    @property
    def primary(self) -> BuildCache:
        """The write target: the first mirror in the list."""
        return self.mirrors[0]

    @property
    def label(self) -> str:
        return "+".join(m.label for m in self.mirrors)

    # ------------------------------------------------------------------
    # retry / degrade machinery
    # ------------------------------------------------------------------
    def _with_retries(self, mirror: BuildCache, fn: Callable[[], T]) -> T:
        """Run ``fn``, retrying transient faults with backoff.

        Only :class:`TransientBackendError` is retried — corruption and
        missing blobs are deterministic, retrying them wastes
        round-trips.  The exhausted error propagates to the caller,
        which decides whether the next mirror can take over.
        """
        attempt = 0
        while True:
            try:
                return fn()
            except TransientBackendError as e:
                if attempt >= self.retries:
                    raise
                metrics.inc("buildcache.mirror_retries")
                metrics.inc(f"buildcache.mirror_retries.{mirror.label}")
                delay = self.backoff * (2 ** attempt)
                logger.debug(
                    "mirror %s: transient fault (%s), retry %d/%d in %.3fs",
                    mirror.label, e, attempt + 1, self.retries, delay,
                )
                if delay > 0:
                    time.sleep(delay)
                attempt += 1

    def _fallback(self, mirror: BuildCache, op: str, error: Exception) -> None:
        metrics.inc("buildcache.mirror_fallbacks")
        metrics.inc(f"buildcache.mirror_fallbacks.{mirror.label}")
        logger.warning(
            "mirror %s failed during %s (%s) — degrading to the next mirror",
            mirror.label, op, error,
        )

    # ------------------------------------------------------------------
    # first-hit-wins reads
    # ------------------------------------------------------------------
    def __contains__(self, dag_hash: str) -> bool:
        for mirror in self.mirrors:
            try:
                if self._with_retries(mirror, lambda: dag_hash in mirror):
                    return True
            except BuildCacheError as e:
                self._fallback(mirror, "lookup", e)
        return False

    def has_payload(self, dag_hash: str) -> bool:
        for mirror in self.mirrors:
            try:
                if self._with_retries(
                    mirror, lambda: mirror.has_payload(dag_hash)
                ):
                    return True
            except BuildCacheError as e:
                self._fallback(mirror, "has_payload", e)
        return False

    def meta(self, dag_hash: str) -> dict:
        with trace.span("buildcache.mirror_lookup", hash=dag_hash[:7]) as sp:
            for mirror in self.mirrors:
                try:
                    if not self._with_retries(
                        mirror, lambda: dag_hash in mirror
                    ):
                        continue
                    document = self._with_retries(
                        mirror, lambda: mirror.meta(dag_hash)
                    )
                except BuildCacheError as e:
                    self._fallback(mirror, "meta", e)
                    continue
                sp.set(mirror=mirror.label)
                return document
        raise BuildCacheError(
            f"cache entry {dag_hash} has no metadata on any mirror "
            f"({self.label})"
        )

    def fetch(self, dag_hash: str) -> CachedPayload:
        """Fetch the payload from the first mirror that can serve it.

        A mirror whose index advertises the hash but whose payload
        fetch fails — missing blob, exhausted retries, corrupt entry —
        is *not* fatal: the group falls through and only raises when
        every mirror has been tried.
        """
        with trace.span(
            "buildcache.mirror_fetch",
            hash=dag_hash[:7], mirrors=len(self.mirrors),
        ) as sp:
            last_error: Optional[Exception] = None
            for mirror in self.mirrors:
                try:
                    indexed = self._with_retries(
                        mirror, lambda: dag_hash in mirror
                    )
                except BuildCacheError as e:
                    self._fallback(mirror, "lookup", e)
                    last_error = e
                    continue
                if not indexed:
                    metrics.inc("buildcache.mirror_misses")
                    metrics.inc(f"buildcache.mirror_misses.{mirror.label}")
                    continue
                try:
                    payload = self._with_retries(
                        mirror, lambda: mirror.fetch(dag_hash)
                    )
                except BuildCacheError as e:
                    # index hit, payload unfetchable: the classic
                    # stale-mirror pathology — fall through
                    self._fallback(mirror, "fetch", e)
                    last_error = e
                    continue
                metrics.inc("buildcache.mirror_hits")
                metrics.inc(f"buildcache.mirror_hits.{mirror.label}")
                sp.set(mirror=mirror.label, bytes=payload.size)
                return payload
        detail = f" (last error: {last_error})" if last_error else ""
        raise BuildCacheError(
            f"no mirror in {self.label} could serve cache entry "
            f"{dag_hash}{detail}"
        )

    def all_specs(self) -> List[Spec]:
        """Union of every mirror's reusable specs, de-duplicated by
        ``dag_hash`` — the first mirror indexing a hash provides its
        document (so a local override shadows the public copy)."""
        seen: set = set()
        specs: List[Spec] = []
        with trace.span(
            "buildcache.mirror_all_specs", mirrors=len(self.mirrors)
        ) as sp:
            for mirror in self.mirrors:
                try:
                    mirror_specs = self._with_retries(mirror, mirror.all_specs)
                except BuildCacheError as e:
                    self._fallback(mirror, "all_specs", e)
                    continue
                for spec in mirror_specs:
                    h = spec.dag_hash()
                    if h in seen:
                        continue
                    seen.add(h)
                    specs.append(spec)
            sp.set(specs=len(specs))
        return specs

    def __len__(self) -> int:
        seen: set = set()
        for mirror in self.mirrors:
            try:
                seen.update(self._with_retries(mirror, lambda: set(mirror)))
            except BuildCacheError as e:
                self._fallback(mirror, "len", e)
        return len(seen)

    def __iter__(self) -> Iterator[str]:
        seen: set = set()
        for mirror in self.mirrors:
            try:
                hashes = self._with_retries(mirror, lambda: list(mirror))
            except BuildCacheError as e:
                self._fallback(mirror, "iter", e)
                continue
            for h in hashes:
                if h not in seen:
                    seen.add(h)
                    yield h

    # ------------------------------------------------------------------
    # verify / extract dispatch to the serving mirror
    # ------------------------------------------------------------------
    def _serving(self, payload: CachedPayload) -> BuildCache:
        """The mirror that produced ``payload`` (by its ``source``
        label), defaulting to the primary for foreign payloads."""
        if payload.source is not None:
            mirror = self._by_label.get(payload.source)
            if mirror is not None:
                return mirror
        return self.primary

    def verify_payload(self, payload: CachedPayload) -> CachedPayload:
        return self._serving(payload).verify_payload(payload)

    def extract_payload(
        self,
        payload: CachedPayload,
        prefix,
        extra_prefix_map: Optional[Dict[str, str]] = None,
    ):
        return self._serving(payload).extract_payload(
            payload, prefix, extra_prefix_map=extra_prefix_map
        )

    def extract(
        self,
        dag_hash: str,
        prefix,
        extra_prefix_map: Optional[Dict[str, str]] = None,
    ):
        payload = self.fetch(dag_hash)
        serving = self._serving(payload)
        if serving.trust is not None:
            serving.verify_payload(payload)
        return serving.extract_payload(
            payload, prefix, extra_prefix_map=extra_prefix_map
        )

    # ------------------------------------------------------------------
    # push-to-primary writes
    # ------------------------------------------------------------------
    def push(self, spec, prefix, dep_prefixes: Optional[Dict[str, str]] = None):
        """Writes always target the primary mirror; a read-only primary
        surfaces the backend's clear :class:`~repro.buildcache.backend.
        ReadOnlyBackendError`-derived message instead of a partial
        write further down."""
        return self.primary.push(spec, prefix, dep_prefixes=dep_prefixes)

    def save_index(self) -> None:
        self.primary.save_index()

    @property
    def trust(self):
        """The primary's trust policy (duck-type parity with
        ``BuildCache``; per-payload verification dispatches to the
        serving mirror's own policy)."""
        return self.primary.trust

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"<MirrorGroup [{', '.join(m.label for m in self.mirrors)}] "
            f"retries={self.retries}>"
        )
