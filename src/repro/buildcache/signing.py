"""Signed buildcaches: Spack's GPG model via HMAC-SHA256 manifests.

Real Spack signs the spec file of every cache entry with GPG and ships
public keys alongside the cache (``spack gpg trust``).  No key daemon
exists in this sandbox, so we model the same trust boundary with
symmetric keys:

* a **manifest** per entry records the SHA-256 digest of every payload
  file and of the metadata document — the content-addressed statement
  of "what was pushed";
* a **detached signature** is an HMAC-SHA256 of the manifest bytes
  under a named :class:`SigningKey`;
* a consumer configures a :class:`TrustStore` of accepted keys; on
  extraction the manifest signature must verify against a trusted key
  AND the payload must still match the manifest digests.

This preserves exactly the properties the paper's distribution story
needs: tampered payloads are rejected, unsigned entries are rejected by
trusting consumers, and signatures survive relocation because they
cover the *cache* content, not the installed (rewritten) binaries.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from typing import Dict, Iterable, List, Optional

__all__ = ["SigningKey", "TrustStore", "SignatureError", "sha256_digest"]


class SignatureError(RuntimeError):
    """A signature is missing, unknown, or does not verify."""


def sha256_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class SigningKey:
    """A named symmetric signing key (the GPG keypair stand-in).

    The ``key_id`` is derived from the secret, so two keys that happen
    to share a human name still have distinct identities — exactly like
    a GPG fingerprint.
    """

    __slots__ = ("name", "secret")

    def __init__(self, name: str, secret: str):
        if not name:
            raise ValueError("signing key needs a name")
        if not secret:
            raise ValueError("signing key needs a secret")
        self.name = name
        self.secret = secret

    @classmethod
    def generate(cls, name: str) -> "SigningKey":
        """Create a fresh key with a random 256-bit secret."""
        return cls(name, secrets.token_hex(32))

    @property
    def key_id(self) -> str:
        """Stable public identifier (fingerprint) for this key."""
        return hashlib.sha256(
            b"repro-key:" + self.secret.encode()
        ).hexdigest()[:16]

    def sign(self, data: bytes) -> Dict[str, str]:
        """Detached signature document over ``data``."""
        mac = hmac.new(self.secret.encode(), data, hashlib.sha256)
        return {
            "key_name": self.name,
            "key_id": self.key_id,
            "algorithm": "hmac-sha256",
            "signature": mac.hexdigest(),
        }

    def verify(self, data: bytes, signature: Dict[str, str]) -> bool:
        mac = hmac.new(self.secret.encode(), data, hashlib.sha256)
        return hmac.compare_digest(mac.hexdigest(), signature.get("signature", ""))

    def __repr__(self) -> str:
        return f"<SigningKey {self.name!r} id={self.key_id}>"


class TrustStore:
    """The set of signing keys a consumer accepts (``spack gpg trust``)."""

    def __init__(self, keys: Iterable[SigningKey] = ()):
        self._keys: Dict[str, SigningKey] = {}
        for key in keys:
            self.trust(key)

    def trust(self, key: SigningKey) -> None:
        self._keys[key.key_id] = key

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key_id: str) -> bool:
        return key_id in self._keys

    def keys(self) -> List[SigningKey]:
        return list(self._keys.values())

    def verify(self, data: bytes, signature: Optional[Dict[str, str]]) -> None:
        """Check ``signature`` over ``data`` against the trusted keys.

        Raises :class:`SignatureError` when the signature is missing,
        from an untrusted key, or fails to verify.
        """
        if not signature:
            raise SignatureError(
                "entry is unsigned but the consumer requires trusted signatures"
            )
        key_id = signature.get("key_id", "")
        key = self._keys.get(key_id)
        if key is None:
            raise SignatureError(
                f"signature by untrusted key "
                f"{signature.get('key_name', '?')!r} (id {key_id or '?'})"
            )
        if not key.verify(data, signature):
            raise SignatureError(
                f"signature by key {key.name!r} does not verify: "
                "manifest was modified after signing"
            )

    def __repr__(self) -> str:
        names = ", ".join(sorted(k.name for k in self._keys.values()))
        return f"<TrustStore [{names}]>"
