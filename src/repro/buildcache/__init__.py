"""Binary buildcaches: the distribution substrate of Sections 2 and 6.

Two halves:

* :mod:`.cache` — the cache itself: signed, indexed, content-addressed
  binary artifacts with relocation metadata (``BuildCache``), plus the
  GPG-style trust model (``SigningKey``/``TrustStore``).
* :mod:`.generate` — corpus synthesis for the paper's evaluation: the
  greedy non-ASP concretizer and the local/public cache populations
  (``generate_cache_specs``/``vary_configurations``), plus vendor
  externals (``external_spec``).

Plus the mirror seam of Section 6's two-cache evaluation:

* :mod:`.backend` — pluggable byte storage under the cache
  (``LocalFSBackend``, ``SimulatedRemoteBackend``) with the durable
  atomic-write and atomic-publish contracts.
* :mod:`.mirror` — ``MirrorGroup``: an ordered list of caches consulted
  first-hit-wins with retry/fallback, pushes going to the primary.

And the networked cache pair (the "real mirror" the ROADMAP's
millions-of-users scenarios need):

* :mod:`.httpbackend` — ``HTTPBackend``: the storage contract over
  pooled ``http.client`` connections with conditional GET, range
  reads, and transient-fault taxonomy.
* :mod:`.server` — ``repro buildcache serve``: the threaded
  ``http.server`` process with ETags, ranges, and atomic staged
  publish.
"""

from .backend import (
    BackendError,
    LocalFSBackend,
    MissingBlobError,
    ReadOnlyBackendError,
    SimulatedRemoteBackend,
    StorageBackend,
    TransientBackendError,
)
from .cache import BuildCache, BuildCacheError, CachedPayload, SigningKey, TrustStore
from .generate import (
    external_spec,
    generate_cache_specs,
    greedy_concretize,
    vary_configurations,
)
from .httpbackend import HTTPBackend
from .index import IndexFormatError, ShardedIndex
from .mirror import MirrorGroup
from .server import BuildCacheHTTPServer, start_server
from .signing import SignatureError
from .summary import (
    BloomSummary,
    ShardSummary,
    SortedHashSummary,
    SummaryFormatError,
    build_summary,
    summary_from_document,
)

__all__ = [
    "BuildCache",
    "BuildCacheError",
    "CachedPayload",
    "ShardedIndex",
    "IndexFormatError",
    "ShardSummary",
    "SortedHashSummary",
    "BloomSummary",
    "SummaryFormatError",
    "build_summary",
    "summary_from_document",
    "BackendError",
    "MissingBlobError",
    "TransientBackendError",
    "ReadOnlyBackendError",
    "StorageBackend",
    "LocalFSBackend",
    "SimulatedRemoteBackend",
    "HTTPBackend",
    "BuildCacheHTTPServer",
    "start_server",
    "MirrorGroup",
    "SigningKey",
    "TrustStore",
    "SignatureError",
    "external_spec",
    "generate_cache_specs",
    "greedy_concretize",
    "vary_configurations",
]
