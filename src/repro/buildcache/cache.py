"""The binary buildcache: signed, indexed, content-addressed artifacts.

This is the distribution substrate of Section 2/6 of the paper.  A
cache maps every concrete spec's ``dag_hash`` to the payload tree that
was installed at some build-machine prefix, plus enough metadata to
relocate that payload into any consumer store.

On-disk layout (one directory per cache)::

    <cache>/
      index.json                  -- manifest of shards (format v2)
      index.d/<pp>.json           -- per-hash-prefix index shards
      journal.jsonl               -- pushes not yet folded into shards
      blobs/<dag_hash>/
        files/...                 -- verbatim copy of the install prefix
        meta.json                 -- recorded prefix + dependency prefixes
        manifest.json             -- sha256 digest of meta + every file
        manifest.sig              -- detached HMAC signature (if signed)

The *index* answers "which specs does this mirror serve" without
touching any blob (what Spack's ``index.json`` does for a mirror) and
is sharded by hash prefix so single-spec lookups parse one shard, not
20k specs (see :mod:`repro.buildcache.index`); the per-entry *meta*
records the prefixes needed for relocation; the *manifest* +
*signature* implement the GPG-style trust model (see
:mod:`repro.buildcache.signing`).

The extract path is staged — :meth:`BuildCache.fetch` (blob bytes into
memory), :meth:`BuildCache.verify_payload` (signature + digests over
those bytes), :meth:`BuildCache.extract_payload` (relocate + write) —
so the installer's fetch pipeline can overlap the stages of independent
DAG nodes; :meth:`BuildCache.extract` composes all three for the
serial callers.

All storage I/O goes through a :class:`~repro.buildcache.backend.
StorageBackend` (a local directory by default), so the same cache
logic runs against a simulated flaky remote or any future S3/HTTP
backend, and several caches compose into an ordered mirror list via
:class:`~repro.buildcache.mirror.MirrorGroup`.  A push publishes the
*entire* entry (payload + metadata + manifest + signature) through the
backend's atomic-publish contract, so an interrupted re-push leaves
the previous entry fully intact — never a signed manifest over a
partial payload.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from ..binary.mockelf import BinaryFormatError, MockBinary
from ..binary.relocate import relocate_binary
from ..obs import metrics, trace
from ..spec import Spec
from .backend import (
    LocalFSBackend,
    MissingBlobError,
    ReadOnlyBackendError,
    StorageBackend,
)
from .index import BuildCacheError, ShardedIndex
from .signing import SignatureError, SigningKey, TrustStore, sha256_digest

__all__ = [
    "BuildCache",
    "BuildCacheError",
    "CachedPayload",
    "SigningKey",
    "TrustStore",
]

logger = logging.getLogger(__name__)

INDEX_NAME = "index.json"


def _canonical(document: dict) -> bytes:
    return json.dumps(document, sort_keys=True, indent=1).encode()


@dataclass
class CachedPayload:
    """One cache entry fetched into memory, ready to verify and extract."""

    dag_hash: str
    meta: dict
    #: payload-relative posix path -> file bytes
    files: Dict[str, bytes] = field(default_factory=dict)
    #: payload-relative posix paths of directories (preserves empty dirs)
    dirs: List[str] = field(default_factory=list)
    #: set by :meth:`BuildCache.verify_payload`
    verified: bool = False
    #: label of the cache/mirror that served this payload (attribution
    #: in the installer's fetch pipeline and MirrorGroup fallback)
    source: Optional[str] = None

    @property
    def size(self) -> int:
        return sum(len(data) for data in self.files.values())


class BuildCache:
    """A directory of relocatable binary packages keyed by ``dag_hash``.

    ``signing_key`` makes every push produce a detached signature (the
    CI/publisher role); ``trust`` makes every extract verify the entry
    against a :class:`TrustStore` first (the consumer role).  A cache
    opened with neither behaves like a local scratch mirror.

    ``backend`` swaps the storage substrate (default: a
    :class:`LocalFSBackend` over ``root``); ``name`` sets the label
    used in mirror spans, per-mirror counters, and error messages.
    """

    def __init__(
        self,
        root=None,
        signing_key: Optional[SigningKey] = None,
        trust: Optional[TrustStore] = None,
        backend: Optional[StorageBackend] = None,
        name: Optional[str] = None,
    ):
        if backend is None:
            if root is None:
                raise BuildCacheError("BuildCache needs a root or a backend")
            backend = LocalFSBackend(root)
        self.backend = backend
        root = root if root is not None else getattr(backend, "root", None)
        self.root = Path(root) if root is not None else None
        self.label = name or backend.name
        self.signing_key = signing_key
        self.trust = trust
        #: reconstruction memo shared across all_specs() calls
        self._materialized: Dict[str, Spec] = {}
        with trace.span("buildcache.index_load", cache=backend.describe()) as sp:
            self._index = ShardedIndex(backend)
            sp.set(journal_entries=self._index.journal_entries)
        logger.debug(
            "opened index %s (journal entries replayed: %d) in %.4fs",
            self.index_path, self._index.journal_entries, sp.duration,
        )

    # ------------------------------------------------------------------
    # layout (Path properties serve local-filesystem callers; all I/O
    # inside the cache goes through string keys on the backend)
    # ------------------------------------------------------------------
    @property
    def blobs(self):
        return self.root / "blobs" if self.root else f"{self.label}/blobs"

    @property
    def index_path(self):
        return self.root / INDEX_NAME if self.root else f"{self.label}/{INDEX_NAME}"

    @staticmethod
    def _entry_key(dag_hash: str) -> str:
        return f"blobs/{dag_hash}"

    # ------------------------------------------------------------------
    # index persistence
    # ------------------------------------------------------------------
    def save_index(self) -> None:
        """Fold the push journal into shards and persist the manifest;
        concurrent readers see old-or-new shards, never a torn write."""
        with trace.span("buildcache.index_save", cache=self.backend.describe()) as sp:
            written = self._index.save()
            sp.set(specs=len(self), shards_written=written)
        logger.debug(
            "saved index %s: %d specs, %d shard(s) written in %.4fs",
            self.index_path, len(self), written, sp.duration,
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._index.spec_count()

    def __contains__(self, dag_hash: str) -> bool:
        return self._index.has_spec(dag_hash)

    def __iter__(self):
        return self._index.spec_hashes()

    @property
    def manifest_digest(self) -> Optional[str]:
        """The index's v3 manifest digest (None for v1/v2 indexes)."""
        return self._index.manifest_digest

    def state_token(self):
        """Cheap in-memory token that changes whenever this cache's
        index content may have changed (pushes, saves, refreshes) —
        what :class:`~repro.buildcache.mirror.MirrorGroup` keys its
        cached merged view on."""
        return self._index.state_token()

    def content_digest(self) -> str:
        """Stable digest of the indexed spec set (O(1) with a current
        v3 manifest) — the concretizer's reuse-set cache key."""
        return self._index.content_digest()

    def spec_hash_set(self) -> frozenset:
        """The exact set of indexed spec hashes.  Served from the
        index's summary sidecar when it can prove the answer (zero
        shard reads); otherwise falls back to the full shard walk."""
        hashes = self._index.spec_hash_set()
        if hashes is None:
            hashes = frozenset(self._index.spec_hashes())
        return hashes

    def refresh_index(self) -> int:
        """Pick up another writer's ``save_index`` without reopening:
        delta-reloads only the shards whose manifest digests changed.
        Returns the number of shards invalidated (0 = unchanged)."""
        changed = self._index.refresh()
        if changed:
            self._materialized.clear()
        return changed

    def has_payload(self, dag_hash: str) -> bool:
        """Is the binary payload itself present (not just indexed)?"""
        return self.backend.tree_exists(f"{self._entry_key(dag_hash)}/files")

    def meta(self, dag_hash: str) -> dict:
        key = f"{self._entry_key(dag_hash)}/meta.json"
        try:
            return json.loads(self.backend.get(key))
        except MissingBlobError:
            raise BuildCacheError(
                f"cache entry {dag_hash} has no metadata ({key} missing "
                f"from {self.label})"
            ) from None
        except json.JSONDecodeError as e:
            raise BuildCacheError(
                f"cache entry {dag_hash} has corrupt metadata: {e}"
            ) from e

    def all_specs(self) -> List[Spec]:
        """Every indexed spec, reconstructed as a concrete DAG.

        These are the ``reusable_specs`` fed to the concretizer; splice
        provenance pointers are resolved through the index's build-spec
        documents.  This is the full-enumeration path: it parses every
        shard (single-spec consumers should use ``in`` + ``meta``).
        """
        return [self._materialize(h) for h in self._index.spec_hashes()]

    def materialize_spec(self, dag_hash: str) -> Spec:
        """Reconstruct one indexed spec as a concrete DAG (the per-hash
        slice of :meth:`all_specs`; memoized, loads only the shards the
        DAG's hashes live in)."""
        return self._materialize(dag_hash)

    def _materialize(self, dag_hash: str) -> Spec:
        spec = self._materialized.get(dag_hash)
        if spec is not None:
            return spec
        document = self._index.get_spec(dag_hash)
        if document is None:
            document = self._index.get_build_spec(dag_hash)
        if document is None:
            raise BuildCacheError(f"unknown spec hash {dag_hash} in buildcache")
        spec = Spec.from_dict(document, build_spec_lookup=self._materialize)
        for node in spec.traverse():
            prefix = self._index.external_prefix(node.dag_hash())
            if prefix is not None:
                node.external_prefix = prefix
        self._materialized[dag_hash] = spec
        return spec

    # ------------------------------------------------------------------
    # push
    # ------------------------------------------------------------------
    def push(self, spec: Spec, prefix, dep_prefixes: Optional[Dict[str, str]] = None):
        """Store the payload installed at ``prefix`` under ``spec``'s hash.

        ``dep_prefixes`` maps dependency ``dag_hash`` -> the prefix that
        dependency occupied on the build machine; extraction uses it to
        rewrite dependency references for the consumer's store layout.
        Re-pushing an existing hash is an idempotent overwrite.

        The push is durable on its own: the index entry is appended to
        the journal (fsynced) and replayed on the next open, so a crash
        before ``save_index`` loses nothing.
        """
        if not spec.concrete:
            raise BuildCacheError(f"cannot push abstract spec {spec}")
        prefix = Path(prefix)
        if not prefix.is_dir():
            raise BuildCacheError(
                f"cannot push {spec.name}: install prefix {prefix} does not exist"
            )
        dag_hash = spec.dag_hash()
        with trace.span("buildcache.push", name=spec.name, hash=dag_hash[:7]) as sp:
            # Read the install tree into memory first, then publish the
            # whole entry (payload + meta + manifest + signature) through
            # the backend's atomic-publish contract: a crash mid-push
            # leaves the previous entry fully intact.
            entry_files: Dict[str, bytes] = {}
            entry_dirs: List[str] = ["files"]
            digests: Dict[str, str] = {}
            payload_bytes = 0
            for path in sorted(prefix.rglob("*")):
                rel = path.relative_to(prefix).as_posix()
                if path.is_dir():
                    entry_dirs.append(f"files/{rel}")
                elif path.is_file():
                    data = path.read_bytes()
                    payload_bytes += len(data)
                    entry_files[f"files/{rel}"] = data
                    digests[rel] = sha256_digest(data)

            meta = {
                "name": spec.name,
                "version": str(spec.version),
                "hash": dag_hash,
                "prefix": str(prefix),
                "dep_prefixes": dict(dep_prefixes or {}),
                "spliced": spec.spliced,
            }
            meta_bytes = _canonical(meta)
            entry_files["meta.json"] = meta_bytes

            manifest = {
                "hash": dag_hash,
                "meta": sha256_digest(meta_bytes),
                "files": digests,
            }
            manifest_bytes = _canonical(manifest)
            entry_files["manifest.json"] = manifest_bytes
            if self.signing_key is not None:
                entry_files["manifest.sig"] = _canonical(
                    self.signing_key.sign(manifest_bytes)
                )
            # no signing key: the published tree simply carries no
            # manifest.sig — a stale signature can never survive a re-push

            try:
                self.backend.publish_tree(
                    self._entry_key(dag_hash), entry_files, entry_dirs
                )
            except ReadOnlyBackendError as e:
                raise BuildCacheError(
                    f"cannot push {spec.name} to read-only cache "
                    f"{self.label}: {e}"
                ) from e

            self._index_spec(spec)
            self._materialized.pop(dag_hash, None)
            sp.set(files=len(digests), bytes=payload_bytes)
        metrics.inc("buildcache.pushes")
        metrics.inc("buildcache.pushed_bytes", payload_bytes)
        logger.debug(
            "pushed %s/%s: %d files, %d bytes in %.4fs",
            spec.name, dag_hash[:7], len(digests), payload_bytes, sp.duration,
        )

    def _index_spec(self, spec: Spec) -> None:
        """Record one pushed spec: its document, the provenance documents
        of any splice targets, and external prefixes — journaled through
        the sharded index so the push is durable without ``save_index``."""
        specs = {spec.dag_hash(): spec.to_dict()}
        build_specs: Dict[str, dict] = {}
        external_prefixes: Dict[str, str] = {}
        for node in spec.traverse():
            if node.external and node.external_prefix:
                external_prefixes[node.dag_hash()] = node.external_prefix
            # splice provenance targets live outside this DAG; record
            # their documents so all_specs() can resolve the pointers
            build = node.build_spec
            while build is not None:
                build_hash = build.dag_hash()
                if build_hash in build_specs or (
                    self._index.get_build_spec(build_hash) is not None
                ):
                    break
                build_specs[build_hash] = build.to_dict()
                for sub in build.traverse():
                    if sub.external and sub.external_prefix:
                        external_prefixes[sub.dag_hash()] = sub.external_prefix
                build = build.build_spec
        self._index.record_push(specs, build_specs, external_prefixes)

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def _verify(self, dag_hash: str) -> None:
        """Check signature and content digests before trusting an entry
        (reads payload bytes from disk; the staged pipeline verifies the
        already-fetched bytes via :meth:`verify_payload` instead)."""
        assert self.trust is not None
        with trace.span("buildcache.verify", hash=dag_hash[:7]):
            files_key = f"{self._entry_key(dag_hash)}/files"
            try:
                names, _dirs = self.backend.list_tree(files_key)
            except MissingBlobError:
                names = []
            payload_files = {
                rel: self.backend.get(f"{files_key}/{rel}") for rel in names
            }
            self._verify_files(dag_hash, payload_files)
        metrics.inc("buildcache.verifications")

    def verify_payload(self, payload: CachedPayload) -> CachedPayload:
        """Verify an in-memory payload against its signed manifest."""
        if self.trust is None:
            return payload
        with trace.span("buildcache.verify", hash=payload.dag_hash[:7]):
            self._verify_files(payload.dag_hash, payload.files)
        payload.verified = True
        metrics.inc("buildcache.verifications")
        return payload

    def _verify_files(self, dag_hash: str, payload_files: Dict[str, bytes]) -> None:
        entry = self._entry_key(dag_hash)
        try:
            manifest_bytes = self.backend.get(f"{entry}/manifest.json")
        except MissingBlobError:
            raise BuildCacheError(
                f"cache entry {dag_hash} has no manifest — refusing to extract"
            ) from None
        signature = None
        if self.backend.exists(f"{entry}/manifest.sig"):
            try:
                signature = json.loads(self.backend.get(f"{entry}/manifest.sig"))
            except (MissingBlobError, json.JSONDecodeError) as e:
                raise BuildCacheError(
                    f"cache entry {dag_hash} has a corrupt signature: {e}"
                ) from e
        try:
            self.trust.verify(manifest_bytes, signature)
        except SignatureError as e:
            raise BuildCacheError(f"cache entry {dag_hash}: {e}") from e

        try:
            manifest = json.loads(manifest_bytes)
        except json.JSONDecodeError as e:
            raise BuildCacheError(
                f"cache entry {dag_hash} has a corrupt manifest: {e}"
            ) from e
        try:
            meta_bytes = self.backend.get(f"{entry}/meta.json")
        except MissingBlobError:
            # a manifest without its meta.json is a torn/corrupt entry,
            # not a crash-worthy FileNotFoundError
            raise BuildCacheError(
                f"cache entry {dag_hash} has no metadata ({entry}/meta.json "
                "missing) — refusing to extract"
            ) from None
        if sha256_digest(meta_bytes) != manifest.get("meta"):
            raise BuildCacheError(
                f"cache entry {dag_hash}: metadata does not match its manifest"
            )
        expected: Dict[str, str] = dict(manifest.get("files", {}))
        for rel, data in payload_files.items():
            digest = expected.pop(rel, None)
            if digest is None:
                raise BuildCacheError(
                    f"cache entry {dag_hash}: unexpected file {rel!r} "
                    "not covered by the signed manifest"
                )
            if sha256_digest(data) != digest:
                raise BuildCacheError(
                    f"cache entry {dag_hash}: payload file {rel!r} was "
                    "tampered with after signing"
                )
        if expected:
            missing = ", ".join(sorted(expected))
            raise BuildCacheError(
                f"cache entry {dag_hash}: signed payload files missing: {missing}"
            )

    # ------------------------------------------------------------------
    # staged fetch / extract
    # ------------------------------------------------------------------
    def fetch(self, dag_hash: str) -> CachedPayload:
        """Read a cache entry's metadata and payload bytes into memory.

        This is the I/O stage of the pipelined install path: it has no
        ordering requirements, so the installer prefetches independent
        DAG nodes concurrently while earlier nodes are still extracting.
        """
        meta = self.meta(dag_hash)  # raises BuildCacheError when absent
        files_key = f"{self._entry_key(dag_hash)}/files"
        with trace.span(
            "buildcache.fetch", name=meta.get("name"), hash=dag_hash[:7]
        ) as sp:
            try:
                names, dirs = self.backend.list_tree(files_key)
            except MissingBlobError:
                raise BuildCacheError(
                    f"cache entry {dag_hash} has no payload"
                ) from None
            payload = CachedPayload(
                dag_hash=dag_hash, meta=meta, source=self.label
            )
            payload.dirs = sorted(dirs)
            for rel in sorted(names):
                payload.files[rel] = self.backend.get(f"{files_key}/{rel}")
            sp.set(files=len(payload.files), bytes=payload.size)
        metrics.inc("buildcache.fetches")
        metrics.inc("buildcache.fetched_bytes", payload.size)
        return payload

    def extract_payload(
        self,
        payload: CachedPayload,
        prefix,
        extra_prefix_map: Optional[Dict[str, str]] = None,
    ) -> Path:
        """Relocate an in-memory payload into ``prefix`` and write it."""
        if self.trust is not None and not payload.verified:
            self.verify_payload(payload)
        with trace.span(
            "buildcache.extract",
            name=payload.meta.get("name"),
            hash=payload.dag_hash[:7],
        ) as sp:
            prefix = Path(prefix)
            prefix_map: Dict[str, str] = {}
            recorded = payload.meta.get("prefix")
            if recorded:
                prefix_map[recorded] = str(prefix)
            if extra_prefix_map:
                prefix_map.update(extra_prefix_map)

            prefix.mkdir(parents=True, exist_ok=True)
            for rel in payload.dirs:
                (prefix / rel).mkdir(parents=True, exist_ok=True)
            extracted_bytes = 0
            for rel, data in payload.files.items():
                target = prefix / rel
                target.parent.mkdir(parents=True, exist_ok=True)
                extracted_bytes += len(data)
                try:
                    binary = MockBinary.from_bytes(data)
                except BinaryFormatError:
                    target.write_bytes(data)  # opaque payload: copy verbatim
                    continue
                relocated = relocate_binary(binary, prefix_map)
                relocated.binary.write(target)
            sp.set(files=len(payload.files), bytes=extracted_bytes)
        metrics.inc("buildcache.extractions")
        metrics.inc("buildcache.extracted_bytes", extracted_bytes)
        logger.debug(
            "extracted %s/%s to %s: %d files, %d bytes in %.4fs",
            payload.meta.get("name"), payload.dag_hash[:7], prefix,
            len(payload.files), extracted_bytes, sp.duration,
        )
        return prefix

    def extract(
        self,
        dag_hash: str,
        prefix,
        extra_prefix_map: Optional[Dict[str, str]] = None,
    ) -> Path:
        """Materialize a cached payload at ``prefix``, relocating paths.

        Every mock binary is rewritten so that references to the build
        machine's prefix (and, via ``extra_prefix_map``, its dependency
        prefixes) point into the consumer's store.  Files that are not
        mock binaries are copied verbatim, like headers or docs in a
        real package.  Fetch → verify → extract, in one call.
        """
        payload = self.fetch(dag_hash)
        if self.trust is not None:
            self.verify_payload(payload)
        return self.extract_payload(
            payload, prefix, extra_prefix_map=extra_prefix_map
        )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        signed = self.signing_key.name if self.signing_key else None
        return (
            f"<BuildCache {self.backend.describe()} specs={len(self)} "
            f"signing={signed!r} trusting={self.trust is not None}>"
        )
