"""The binary buildcache: signed, indexed, content-addressed artifacts.

This is the distribution substrate of Section 2/6 of the paper.  A
cache maps every concrete spec's ``dag_hash`` to the payload tree that
was installed at some build-machine prefix, plus enough metadata to
relocate that payload into any consumer store.

On-disk layout (one directory per cache)::

    <cache>/
      index.json                  -- spec documents + external prefixes
      blobs/<dag_hash>/
        files/...                 -- verbatim copy of the install prefix
        meta.json                 -- recorded prefix + dependency prefixes
        manifest.json             -- sha256 digest of meta + every file
        manifest.sig              -- detached HMAC signature (if signed)

The *index* answers "which specs does this mirror serve" without
touching any blob (what Spack's ``index.json`` does for a mirror); the
per-entry *meta* records the prefixes needed for relocation; the
*manifest* + *signature* implement the GPG-style trust model (see
:mod:`repro.buildcache.signing`).
"""

from __future__ import annotations

import json
import logging
import shutil
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from ..binary.mockelf import BinaryFormatError, MockBinary
from ..binary.relocate import relocate_binary
from ..obs import metrics, trace
from ..spec import Spec
from .signing import SignatureError, SigningKey, TrustStore, sha256_digest

__all__ = ["BuildCache", "BuildCacheError", "SigningKey", "TrustStore"]

logger = logging.getLogger(__name__)

INDEX_VERSION = 1
INDEX_NAME = "index.json"


class BuildCacheError(RuntimeError):
    """Raised for corrupt, missing, unsigned, or untrusted cache state."""


def _canonical(document: dict) -> bytes:
    return json.dumps(document, sort_keys=True, indent=1).encode()


def _atomic_write(path: Path, data: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(data)
    tmp.replace(path)


class BuildCache:
    """A directory of relocatable binary packages keyed by ``dag_hash``.

    ``signing_key`` makes every push produce a detached signature (the
    CI/publisher role); ``trust`` makes every extract verify the entry
    against a :class:`TrustStore` first (the consumer role).  A cache
    opened with neither behaves like a local scratch mirror.
    """

    def __init__(
        self,
        root,
        signing_key: Optional[SigningKey] = None,
        trust: Optional[TrustStore] = None,
    ):
        self.root = Path(root)
        self.signing_key = signing_key
        self.trust = trust
        self.root.mkdir(parents=True, exist_ok=True)
        self.blobs.mkdir(parents=True, exist_ok=True)
        #: dag_hash -> Spec.to_dict() document
        self._specs: Dict[str, dict] = {}
        #: dag_hash -> build-spec document (splice provenance targets)
        self._build_specs: Dict[str, dict] = {}
        #: node dag_hash -> external prefix (node_dict drops it, so the
        #: index has to carry it for faithful reconstruction)
        self._external_prefixes: Dict[str, str] = {}
        #: reconstruction memo shared across all_specs() calls
        self._materialized: Dict[str, Spec] = {}
        self._load_index()

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------
    @property
    def blobs(self) -> Path:
        return self.root / "blobs"

    @property
    def index_path(self) -> Path:
        return self.root / INDEX_NAME

    def _entry_dir(self, dag_hash: str) -> Path:
        return self.blobs / dag_hash

    # ------------------------------------------------------------------
    # index persistence
    # ------------------------------------------------------------------
    def _load_index(self) -> None:
        if not self.index_path.exists():
            return
        with trace.span("buildcache.index_load", cache=str(self.root)) as sp:
            try:
                data = json.loads(self.index_path.read_text())
            except (OSError, json.JSONDecodeError) as e:
                raise BuildCacheError(
                    f"corrupt buildcache index at {self.index_path}: {e}"
                ) from e
            if not isinstance(data, dict):
                raise BuildCacheError(
                    f"corrupt buildcache index at {self.index_path}: not an object"
                )
            version = data.get("version")
            if version != INDEX_VERSION:
                raise BuildCacheError(
                    f"buildcache index version {version!r} is not supported "
                    f"(expected {INDEX_VERSION})"
                )
            self._specs = dict(data.get("specs", {}))
            self._build_specs = dict(data.get("build_specs", {}))
            self._external_prefixes = dict(data.get("external_prefixes", {}))
            sp.set(specs=len(self._specs))
        logger.debug(
            "loaded index %s: %d specs in %.4fs",
            self.index_path, len(self._specs), sp.duration,
        )

    def save_index(self) -> None:
        """Persist the index; concurrent readers see old-or-new, never
        a torn write."""
        with trace.span("buildcache.index_save", cache=str(self.root)) as sp:
            document = {
                "version": INDEX_VERSION,
                "specs": self._specs,
                "build_specs": self._build_specs,
                "external_prefixes": self._external_prefixes,
            }
            payload = _canonical(document)
            _atomic_write(self.index_path, payload)
            sp.set(specs=len(self._specs), bytes=len(payload))
        logger.debug(
            "saved index %s: %d specs, %d bytes in %.4fs",
            self.index_path, len(self._specs), len(payload), sp.duration,
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, dag_hash: str) -> bool:
        return dag_hash in self._specs

    def __iter__(self):
        return iter(self._specs)

    def has_payload(self, dag_hash: str) -> bool:
        """Is the binary payload itself present (not just indexed)?"""
        return (self._entry_dir(dag_hash) / "files").is_dir()

    def meta(self, dag_hash: str) -> dict:
        path = self._entry_dir(dag_hash) / "meta.json"
        try:
            return json.loads(path.read_text())
        except FileNotFoundError:
            raise BuildCacheError(
                f"cache entry {dag_hash} has no metadata ({path} missing)"
            ) from None
        except (OSError, json.JSONDecodeError) as e:
            raise BuildCacheError(
                f"cache entry {dag_hash} has corrupt metadata: {e}"
            ) from e

    def all_specs(self) -> List[Spec]:
        """Every indexed spec, reconstructed as a concrete DAG.

        These are the ``reusable_specs`` fed to the concretizer; splice
        provenance pointers are resolved through the index's build-spec
        documents.
        """
        return [self._materialize(h) for h in sorted(self._specs)]

    def _materialize(self, dag_hash: str) -> Spec:
        spec = self._materialized.get(dag_hash)
        if spec is not None:
            return spec
        document = self._specs.get(dag_hash) or self._build_specs.get(dag_hash)
        if document is None:
            raise BuildCacheError(f"unknown spec hash {dag_hash} in buildcache")
        spec = Spec.from_dict(document, build_spec_lookup=self._materialize)
        for node in spec.traverse():
            prefix = self._external_prefixes.get(node.dag_hash())
            if prefix is not None:
                node.external_prefix = prefix
        self._materialized[dag_hash] = spec
        return spec

    # ------------------------------------------------------------------
    # push
    # ------------------------------------------------------------------
    def push(self, spec: Spec, prefix, dep_prefixes: Optional[Dict[str, str]] = None):
        """Store the payload installed at ``prefix`` under ``spec``'s hash.

        ``dep_prefixes`` maps dependency ``dag_hash`` -> the prefix that
        dependency occupied on the build machine; extraction uses it to
        rewrite dependency references for the consumer's store layout.
        Re-pushing an existing hash is an idempotent overwrite.
        """
        if not spec.concrete:
            raise BuildCacheError(f"cannot push abstract spec {spec}")
        prefix = Path(prefix)
        if not prefix.is_dir():
            raise BuildCacheError(
                f"cannot push {spec.name}: install prefix {prefix} does not exist"
            )
        dag_hash = spec.dag_hash()
        with trace.span("buildcache.push", name=spec.name, hash=dag_hash[:7]) as sp:
            entry = self._entry_dir(dag_hash)
            files = entry / "files"
            if files.exists():
                shutil.rmtree(files)
            entry.mkdir(parents=True, exist_ok=True)
            shutil.copytree(prefix, files)

            meta = {
                "name": spec.name,
                "version": str(spec.version),
                "hash": dag_hash,
                "prefix": str(prefix),
                "dep_prefixes": dict(dep_prefixes or {}),
                "spliced": spec.spliced,
            }
            meta_bytes = _canonical(meta)
            _atomic_write(entry / "meta.json", meta_bytes)

            digests = {}
            payload_bytes = 0
            for path in sorted(files.rglob("*")):
                if path.is_file():
                    data = path.read_bytes()
                    payload_bytes += len(data)
                    digests[path.relative_to(files).as_posix()] = sha256_digest(
                        data
                    )
            manifest = {
                "hash": dag_hash,
                "meta": sha256_digest(meta_bytes),
                "files": digests,
            }
            manifest_bytes = _canonical(manifest)
            _atomic_write(entry / "manifest.json", manifest_bytes)

            sig_path = entry / "manifest.sig"
            if self.signing_key is not None:
                _atomic_write(
                    sig_path, _canonical(self.signing_key.sign(manifest_bytes))
                )
            elif sig_path.exists():
                sig_path.unlink()  # a stale signature would cover nothing

            self._index_spec(spec)
            self._materialized.pop(dag_hash, None)
            sp.set(files=len(digests), bytes=payload_bytes)
        metrics.inc("buildcache.pushes")
        metrics.inc("buildcache.pushed_bytes", payload_bytes)
        logger.debug(
            "pushed %s/%s: %d files, %d bytes in %.4fs",
            spec.name, dag_hash[:7], len(digests), payload_bytes, sp.duration,
        )

    def _index_spec(self, spec: Spec) -> None:
        self._specs[spec.dag_hash()] = spec.to_dict()
        for node in spec.traverse():
            if node.external and node.external_prefix:
                self._external_prefixes[node.dag_hash()] = node.external_prefix
            # splice provenance targets live outside this DAG; record
            # their documents so all_specs() can resolve the pointers
            build = node.build_spec
            while build is not None:
                build_hash = build.dag_hash()
                if build_hash in self._build_specs:
                    break
                self._build_specs[build_hash] = build.to_dict()
                for sub in build.traverse():
                    if sub.external and sub.external_prefix:
                        self._external_prefixes[sub.dag_hash()] = sub.external_prefix
                build = build.build_spec

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def _verify(self, dag_hash: str) -> None:
        """Check signature and content digests before trusting an entry."""
        assert self.trust is not None
        with trace.span("buildcache.verify", hash=dag_hash[:7]):
            self._verify_inner(dag_hash)
        metrics.inc("buildcache.verifications")

    def _verify_inner(self, dag_hash: str) -> None:
        entry = self._entry_dir(dag_hash)
        manifest_path = entry / "manifest.json"
        if not manifest_path.exists():
            raise BuildCacheError(
                f"cache entry {dag_hash} has no manifest — refusing to extract"
            )
        manifest_bytes = manifest_path.read_bytes()
        sig_path = entry / "manifest.sig"
        signature = None
        if sig_path.exists():
            try:
                signature = json.loads(sig_path.read_text())
            except (OSError, json.JSONDecodeError) as e:
                raise BuildCacheError(
                    f"cache entry {dag_hash} has a corrupt signature: {e}"
                ) from e
        try:
            self.trust.verify(manifest_bytes, signature)
        except SignatureError as e:
            raise BuildCacheError(f"cache entry {dag_hash}: {e}") from e

        try:
            manifest = json.loads(manifest_bytes)
        except json.JSONDecodeError as e:
            raise BuildCacheError(
                f"cache entry {dag_hash} has a corrupt manifest: {e}"
            ) from e
        meta_path = entry / "meta.json"
        if sha256_digest(meta_path.read_bytes()) != manifest.get("meta"):
            raise BuildCacheError(
                f"cache entry {dag_hash}: metadata does not match its manifest"
            )
        files = entry / "files"
        expected: Dict[str, str] = dict(manifest.get("files", {}))
        for path in sorted(files.rglob("*")):
            if not path.is_file():
                continue
            rel = path.relative_to(files).as_posix()
            digest = expected.pop(rel, None)
            if digest is None:
                raise BuildCacheError(
                    f"cache entry {dag_hash}: unexpected file {rel!r} "
                    "not covered by the signed manifest"
                )
            if sha256_digest(path.read_bytes()) != digest:
                raise BuildCacheError(
                    f"cache entry {dag_hash}: payload file {rel!r} was "
                    "tampered with after signing"
                )
        if expected:
            missing = ", ".join(sorted(expected))
            raise BuildCacheError(
                f"cache entry {dag_hash}: signed payload files missing: {missing}"
            )

    # ------------------------------------------------------------------
    # extract
    # ------------------------------------------------------------------
    def extract(
        self,
        dag_hash: str,
        prefix,
        extra_prefix_map: Optional[Dict[str, str]] = None,
    ) -> Path:
        """Materialize a cached payload at ``prefix``, relocating paths.

        Every mock binary is rewritten so that references to the build
        machine's prefix (and, via ``extra_prefix_map``, its dependency
        prefixes) point into the consumer's store.  Files that are not
        mock binaries are copied verbatim, like headers or docs in a
        real package.
        """
        meta = self.meta(dag_hash)  # raises BuildCacheError when absent
        entry = self._entry_dir(dag_hash)
        files = entry / "files"
        if not files.is_dir():
            raise BuildCacheError(f"cache entry {dag_hash} has no payload")
        with trace.span(
            "buildcache.extract", name=meta.get("name"), hash=dag_hash[:7]
        ) as sp:
            if self.trust is not None:
                self._verify(dag_hash)

            prefix = Path(prefix)
            prefix_map: Dict[str, str] = {}
            recorded = meta.get("prefix")
            if recorded:
                prefix_map[recorded] = str(prefix)
            if extra_prefix_map:
                prefix_map.update(extra_prefix_map)

            prefix.mkdir(parents=True, exist_ok=True)
            extracted_bytes = 0
            file_count = 0
            for path in sorted(files.rglob("*")):
                rel = path.relative_to(files)
                target = prefix / rel
                if path.is_dir():
                    target.mkdir(parents=True, exist_ok=True)
                    continue
                target.parent.mkdir(parents=True, exist_ok=True)
                data = path.read_bytes()
                extracted_bytes += len(data)
                file_count += 1
                try:
                    binary = MockBinary.from_bytes(data)
                except BinaryFormatError:
                    target.write_bytes(data)  # opaque payload: copy verbatim
                    continue
                relocated = relocate_binary(binary, prefix_map)
                relocated.binary.write(target)
            sp.set(files=file_count, bytes=extracted_bytes)
        metrics.inc("buildcache.extractions")
        metrics.inc("buildcache.extracted_bytes", extracted_bytes)
        logger.debug(
            "extracted %s/%s to %s: %d files, %d bytes in %.4fs",
            meta.get("name"), dag_hash[:7], prefix, file_count,
            extracted_bytes, sp.duration,
        )
        return prefix

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        signed = self.signing_key.name if self.signing_key else None
        return (
            f"<BuildCache {self.root} specs={len(self._specs)} "
            f"signing={signed!r} trusting={self.trust is not None}>"
        )
