"""Synthesize buildcache corpora: the paper's evaluation populations.

Section 6 of the paper concretizes against two caches: a ~200-spec
*local* cache (the RADIUSS stack built consistently against one MPI)
and a ~20,000-spec *public* cache (many configurations of the same
stack).  Building those populations with the ASP solver itself would be
circular — and slow — so this module provides a **greedy, non-ASP
concretizer** that pins every choice deterministically:

* versions: highest non-deprecated declared version satisfying the
  accumulated constraints (or an explicit override);
* variants: declared defaults (or explicit/hard-constrained values);
* virtuals: the preferred buildable provider (or an explicit mapping);
* one node per package name, ``os``/``target`` fixed.

The resulting specs are fully concrete DAGs the reuse encoder can offer
to the solver verbatim — a default-config greedy spec is exactly what
the solver would pick when minimizing builds, so cached stacks
concretize with zero rebuilds.

:func:`external_spec` models the other cache-population path: vendor
binaries (cray-mpich) that exist only as externals at some prefix.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..package.repository import Repository
from ..spec import (
    DEPTYPE_LINK_RUN,
    Spec,
    UnsatisfiableSpecError,
    VariantMap,
    Version,
    VersionList,
    any_version,
    parse_one,
)
from ..spec.variant import normalize_value
from .cache import BuildCacheError

__all__ = [
    "external_spec",
    "greedy_concretize",
    "generate_cache_specs",
    "vary_configurations",
]

DEFAULT_OS = "centos8"
DEFAULT_TARGET = "skylake"

#: fixpoint bound for greedy constraint propagation; the RADIUSS DAGs
#: settle in 2-3 passes, anything near the bound indicates a cycle of
#: conditional dependencies flipping each other
_MAX_PASSES = 32


# ---------------------------------------------------------------------------
# externals
# ---------------------------------------------------------------------------
def external_spec(
    repo: Repository,
    name: str,
    prefix: str,
    os: str = DEFAULT_OS,
    target: str = DEFAULT_TARGET,
) -> Spec:
    """A concrete spec for a vendor-provided binary at ``prefix``.

    Externals have no dependencies — the vendor's runtime is opaque to
    us — and keep their prefix outside the store.  The prefix need not
    exist locally (it typically names a path on the deployment machine,
    e.g. ``/opt/cray/pe/mpich``), but it must be non-empty: an external
    with no location can never be loaded and would fail much later, at
    install time, with a confusing error.
    """
    if prefix is None or not str(prefix).strip():
        raise BuildCacheError(
            f"external {name!r} needs a non-empty prefix: an external "
            "package is *defined* by where its binaries live"
        )
    cls = repo.get(name)  # RepositoryError for unknown packages
    variants = {}
    for decl in cls.variant_decls:
        if decl.when is None:
            variants[decl.name] = normalize_value(decl.default)
    spec = Spec(
        name,
        VersionList.from_string(f"={cls.preferred_version()}"),
        VariantMap(variants),
        os,
        target,
    )
    spec.external = True
    spec.external_prefix = str(prefix)
    spec._mark_concrete()
    return spec


# ---------------------------------------------------------------------------
# greedy concretization
# ---------------------------------------------------------------------------
class _Constraint:
    """Accumulated node-local requirements for one package name."""

    __slots__ = ("versions", "variants")

    def __init__(self):
        self.versions = any_version()
        self.variants: Dict[str, str] = {}

    def merge_spec(self, spec: Spec, package: str) -> None:
        """Fold ``spec``'s node-local constraints into this record."""
        if not spec.versions.is_any:
            merged = self.versions.intersection(spec.versions)
            if not merged.constraints:
                raise BuildCacheError(
                    f"conflicting version requirements on {package}: "
                    f"{self.versions} vs {spec.versions}"
                )
            self.versions = merged
        for _, variant in spec.variants.items():
            existing = self.variants.get(variant.name)
            if existing is not None and existing != variant.value:
                raise BuildCacheError(
                    f"conflicting requirements on {package} variant "
                    f"{variant.name!r}: {existing!r} vs {variant.value!r}"
                )
            self.variants[variant.name] = variant.value


def _choose_version(
    cls,
    constraint: _Constraint,
    override: Optional[str],
) -> Version:
    declared = cls.declared_versions()  # newest first

    def admissible(version: Version) -> bool:
        return VersionList([version]).satisfies(constraint.versions)

    if override is not None:
        candidate = Version(override)
        if candidate in declared and admissible(candidate):
            return candidate
        # an override that violates a hard constraint (or names an
        # undeclared version) silently yields to the constraints —
        # vary_configurations leans on this to stay valid
    deprecated = {d.version for d in cls.version_decls if d.deprecated}
    for version in declared:
        if version not in deprecated and admissible(version):
            return version
    for version in declared:
        if admissible(version):
            return version
    raise BuildCacheError(
        f"no declared version of {cls.name} satisfies {constraint.versions}"
    )


def _choose_variants(
    cls,
    version: Version,
    constraint: _Constraint,
    overrides: Dict[Tuple[str, str], str],
) -> Dict[str, str]:
    probe = Spec(cls.name, VersionList.from_string(f"={version}"))
    values: Dict[str, str] = {}
    for decl in cls.variant_decls:
        if decl.when is not None and not probe.satisfies(decl.when):
            continue
        pinned = constraint.variants.get(decl.name)
        if pinned is not None:
            values[decl.name] = pinned
            continue
        override = overrides.get((cls.name, decl.name))
        if override is not None and str(override) in decl.allowed_values():
            values[decl.name] = str(override)
        else:
            values[decl.name] = normalize_value(decl.default)
    # constraints may pin variants the package never declared (a parent
    # wrote ``dep+flag`` speculatively); keep them so satisfies() holds
    for name, value in constraint.variants.items():
        values.setdefault(name, value)
    return values


def greedy_concretize(
    repo: Repository,
    root: Union[str, Spec],
    versions: Optional[Dict[str, str]] = None,
    variants: Optional[Dict[Tuple[str, str], str]] = None,
    providers: Optional[Dict[str, str]] = None,
    include_build_deps: bool = True,
    default_os: str = DEFAULT_OS,
    default_target: str = DEFAULT_TARGET,
) -> Spec:
    """Concretize ``root`` greedily, without the ASP solver.

    ``versions`` maps package name -> version override, ``variants``
    maps ``(package, variant)`` -> value override, ``providers`` maps
    virtual -> provider package.  Overrides are *soft*: a hard
    constraint from a ``depends_on`` spec always wins.  With
    ``include_build_deps=False`` the DAG carries only link-run edges,
    which is the shape binary caches store.

    Constraint propagation runs to a fixpoint because conditional
    dependencies (``when="+mpi"``) can enable edges that add
    constraints that change earlier choices.
    """
    versions = dict(versions or {})
    variant_overrides = dict(variants or {})
    provider_map = dict(providers or {})

    root_spec = parse_one(root) if isinstance(root, str) else root
    root_name = root_spec.name
    if root_name is None:
        raise BuildCacheError("cannot concretize an anonymous spec")
    if repo.is_virtual(root_name):
        raise BuildCacheError(f"root {root_name!r} is a virtual, not a package")
    repo.get(root_name)  # RepositoryError for unknown packages

    # ``root ^pkg`` requests: constraints on the named node, plus a
    # provider preference when the named package implements a virtual
    requested: Dict[str, Spec] = {dep.name: dep for dep in root_spec.dependencies()}
    provider_prefs = dict(provider_map)
    for name in requested:
        if name in repo:
            for virtual in repo.get(name).provided_virtuals():
                provider_prefs.setdefault(virtual, name)

    def pick_provider(virtual: str) -> str:
        choice = provider_prefs.get(virtual)
        if choice is not None:
            return choice
        candidates = repo.providers(virtual)
        if not candidates:
            raise BuildCacheError(f"no provider for virtual {virtual!r}")
        for name in candidates:
            if repo.get(name).buildable:
                return name
        return candidates[0]

    def provisional_node(name: str, constraint: _Constraint) -> Spec:
        cls = repo.get(name)
        version = _choose_version(cls, constraint, versions.get(name))
        chosen = _choose_variants(cls, version, constraint, variant_overrides)
        return Spec(
            name,
            VersionList.from_string(f"={version}"),
            VariantMap(chosen),
            default_os,
            default_target,
        )

    # fixpoint: pass N evaluates `when` conditions against pass N-1's
    # node choices, re-deriving the edge set and constraints from scratch
    chosen_nodes: Dict[str, Spec] = {}
    edges: Dict[str, Dict[str, Tuple[set, Optional[str]]]] = {}
    for _ in range(_MAX_PASSES):
        constraints: Dict[str, _Constraint] = {}

        def constraint_for(name: str) -> _Constraint:
            record = constraints.get(name)
            if record is None:
                record = _Constraint()
                constraints[name] = record
                request = requested.get(name)
                if request is not None:
                    record.merge_spec(request, name)
            return record

        constraint_for(root_name).merge_spec(root_spec, root_name)
        edges = {}
        visited: List[str] = []
        queue = [root_name]
        while queue:
            name = queue.pop(0)
            if name in edges:
                continue
            edges[name] = {}
            visited.append(name)
            cls = repo.get(name)
            node_view = chosen_nodes.get(name)
            if node_view is None:
                node_view = provisional_node(name, constraint_for(name))
            for decl in cls.dependency_decls:
                if decl.when is not None and not node_view.satisfies(decl.when):
                    continue
                if not include_build_deps and DEPTYPE_LINK_RUN not in decl.deptypes:
                    continue
                dep_name = decl.spec.name
                virtual = None
                if repo.is_virtual(dep_name):
                    virtual = dep_name
                    dep_name = pick_provider(virtual)
                constraint_for(dep_name).merge_spec(decl.spec, dep_name)
                deptypes, _ = edges[name].setdefault(dep_name, (set(), virtual))
                deptypes.update(decl.deptypes)
                queue.append(dep_name)

        new_nodes = {
            name: provisional_node(name, constraint_for(name)) for name in visited
        }
        if set(new_nodes) == set(chosen_nodes) and all(
            new_nodes[n].node_dict() == chosen_nodes[n].node_dict()
            for n in new_nodes
        ):
            chosen_nodes = new_nodes
            break
        chosen_nodes = new_nodes
    else:
        raise BuildCacheError(
            f"greedy concretization of {root_name} did not converge: "
            "conditional dependencies keep flipping each other"
        )

    # assemble the DAG bottom-up (children before parents)
    order: List[str] = []
    state: Dict[str, int] = {}

    def visit(name: str) -> None:
        mark = state.get(name, 0)
        if mark == 2:
            return
        if mark == 1:
            raise BuildCacheError(f"dependency cycle through {name!r}")
        state[name] = 1
        for child in sorted(edges.get(name, {})):
            visit(child)
        state[name] = 2
        order.append(name)

    visit(root_name)
    built: Dict[str, Spec] = {}
    for name in order:
        node = chosen_nodes[name].copy()
        for child, (deptypes, virtual) in sorted(edges.get(name, {}).items()):
            node.add_dependency(built[child], tuple(sorted(deptypes)), virtual)
        node._mark_concrete()
        built[name] = node
    return built[root_name]


# ---------------------------------------------------------------------------
# corpus generators
# ---------------------------------------------------------------------------
def generate_cache_specs(
    repo: Repository,
    roots: Sequence[Union[str, Spec]],
    versions: Optional[Dict[str, str]] = None,
    variants: Optional[Dict[Tuple[str, str], str]] = None,
    providers: Optional[Dict[str, str]] = None,
    include_build_deps: bool = False,
) -> List[Spec]:
    """The *local* cache population: every root concretized consistently
    (same overrides throughout), deduplicated by DAG hash."""
    specs: List[Spec] = []
    seen = set()
    for root in roots:
        spec = greedy_concretize(
            repo,
            root,
            versions=versions,
            variants=variants,
            providers=providers,
            include_build_deps=include_build_deps,
        )
        dag_hash = spec.dag_hash()
        if dag_hash not in seen:
            seen.add(dag_hash)
            specs.append(spec)
    return specs


def vary_configurations(
    repo: Repository,
    roots: Sequence[Union[str, Spec]],
    count: int,
    seed: int = 0,
    providers: Optional[Sequence[Optional[Dict[str, str]]]] = None,
) -> List[Spec]:
    """The *public* cache population: ``count`` distinct configurations.

    Roots are cycled for coverage while a seeded RNG perturbs provider
    choice, variant values, and versions — the same ``seed`` always
    yields the same specs, in the same order (the benchmarks rely on
    that for run-to-run comparability).  Listing a provider mapping
    multiple times weights it proportionally, mirroring the real public
    cache's mpich-heavy skew.
    """
    if count < 0:
        raise BuildCacheError("cannot generate a negative number of specs")
    rng = random.Random(seed)
    provider_choices: List[Optional[Dict[str, str]]] = list(providers or [None])
    root_list = list(roots)
    if not root_list and count:
        raise BuildCacheError("cannot vary configurations of zero roots")

    base_cache: Dict[Tuple, Spec] = {}

    def base_dag(root, provider_map) -> Spec:
        key = (str(root), tuple(sorted((provider_map or {}).items())))
        spec = base_cache.get(key)
        if spec is None:
            spec = greedy_concretize(
                repo, root, providers=provider_map, include_build_deps=False
            )
            base_cache[key] = spec
        return spec

    specs: List[Spec] = []
    seen = set()
    attempts = 0
    max_attempts = max(count * 50, 1000)
    index = 0
    while len(specs) < count:
        if attempts >= max_attempts:
            raise BuildCacheError(
                f"could not reach {count} distinct configurations from "
                f"{len(root_list)} roots after {attempts} attempts "
                f"({len(specs)} found) — the configuration space is too small"
            )
        attempts += 1
        root = root_list[index % len(root_list)]
        index += 1
        provider_map = rng.choice(provider_choices)

        try:
            base = base_dag(root, provider_map)
        except BuildCacheError:
            continue  # e.g. a provider mapping invalid for this root
        variant_overrides: Dict[Tuple[str, str], str] = {}
        version_overrides: Dict[str, str] = {}
        for node in base.traverse():
            cls = repo.get(node.name)
            for decl in cls.variant_decls:
                if rng.random() < 0.35:
                    variant_overrides[(node.name, decl.name)] = rng.choice(
                        decl.allowed_values()
                    )
            declared = [str(v) for v in cls.declared_versions()]
            if len(declared) > 1 and rng.random() < 0.3:
                version_overrides[node.name] = rng.choice(declared)

        try:
            spec = greedy_concretize(
                repo,
                root,
                versions=version_overrides,
                variants=variant_overrides,
                providers=provider_map,
                include_build_deps=False,
            )
        except (BuildCacheError, UnsatisfiableSpecError):
            continue  # random choices collided with hard constraints
        dag_hash = spec.dag_hash()
        if dag_hash not in seen:
            seen.add(dag_hash)
            specs.append(spec)
    return specs
