"""The paper's toy package ecosystem (Figure 1 and Section 5 examples).

Contains ``example`` (with its conditional zlib dependency, optional
bzip support, an MPI dependency, and the two ``can_splice`` directives
from Figure 1), ``example-ng``, zlib, bzip2, and two MPI providers with
deliberately incompatible ``MPI_Comm`` layouts (Section 2.1).
"""

from __future__ import annotations

from ..package import (
    Package,
    Repository,
    can_splice,
    conflicts,
    depends_on,
    provides,
    variant,
    version,
)

__all__ = ["make_mock_repo"]


def make_mock_repo() -> Repository:
    """Build a fresh repository of the paper's example packages."""
    repo = Repository("mock")

    class Zlib(Package):
        """Compression library; two ABI-compatible minor versions."""

        version("1.3")
        version("1.2.11")
        version("1.2")
        version("1.1")
        version("1.0")
        variant("optimize", default=True)
        variant("pic", default=True)
        variant("shared", default=True)
        provides_symbols = ("deflate", "inflate", "crc32")
        # zlib 1.3 keeps the 1.2 ABI: it may stand in for built 1.2.x
        can_splice("zlib@1.2", when="@1.3")

    class Bzip2(Package):
        version("1.0.8")
        version("1.0.6")
        variant("debug", default=False)
        variant("pic", default=True)
        variant("shared", default=True)
        provides_symbols = ("BZ2_bzCompress", "BZ2_bzDecompress")

    class Mpich(Package):
        """Reference MPI; MPI_Comm is a 32-bit integer (Section 2.1)."""

        version("4.1")
        version("3.4.3")
        version("3.1")
        variant("pmi", default="pmix", values=("pmix", "simple", "slurm"))
        provides("mpi")
        provides_symbols = ("MPI_Init", "MPI_Send", "MPI_Recv", "MPI_Comm_rank")
        type_layouts = {"MPI_Comm": "int32"}

    class Openmpi(Package):
        """MPI with an incompatible MPI_Comm (opaque struct pointer)."""

        version("4.1.5")
        version("4.0.0")
        provides("mpi")
        provides_symbols = ("MPI_Init", "MPI_Send", "MPI_Recv", "MPI_Comm_rank")
        type_layouts = {"MPI_Comm": "ptr-struct"}

    class Mpiabi(Package):
        """Mock MPI built to the MPICH ABI (Section 6.1.2), based on
        MVAPICH; it can be spliced in for built mpich@3.4.3."""

        version("1.0")
        provides("mpi")
        provides_symbols = ("MPI_Init", "MPI_Send", "MPI_Recv", "MPI_Comm_rank")
        type_layouts = {"MPI_Comm": "int32"}
        can_splice("mpich@3.4.3")

    class Example(Package):
        """The Figure-1 package, directive for directive."""

        version("1.1.0")
        version("1.0.0")
        variant("bzip", default=True)
        depends_on("bzip2", when="+bzip")
        depends_on("zlib@1.2", when="@1.0.0")
        depends_on("zlib@1.3", when="@1.1.0")
        depends_on("mpi")
        can_splice("example@1.0.0", when="@1.1.0")
        can_splice("example-ng@2.3.2+compat", when="@1.1.0+bzip")

    class ExampleNg(Package):
        """Successor package example@1.1.0+bzip can replace."""

        version("2.3.2")
        version("2.0.0")
        variant("compat", default=True)
        depends_on("zlib@1.3")
        depends_on("mpi")

    class Tool(Package):
        """A small consumer used by splice-mechanics tests (T in Fig 2)."""

        version("1.0")
        depends_on("example")
        depends_on("zlib")

    class CmakeMock(Package):
        name = "cmake"
        version("3.27")
        version("3.20")

    class App(Package):
        """Top-level application exercising build dependencies."""

        version("2.0")
        version("1.0")
        depends_on("example")
        depends_on("cmake", type="build")
        conflicts("@1.0 ^zlib@1.0")

    for cls in (
        Zlib,
        Bzip2,
        Mpich,
        Openmpi,
        Mpiabi,
        Example,
        ExampleNg,
        Tool,
        CmakeMock,
        App,
    ):
        repo.add(cls)
    repo.provider_preferences["mpi"] = ["mpich", "openmpi"]
    return repo
