"""Package repositories: the paper's toy examples and the RADIUSS stack."""

from .mock import make_mock_repo
from .radiuss import (
    make_radiuss_repo,
    add_mpiabi_replicas,
    RADIUSS_ROOTS,
    MPI_DEPENDENT_ROOTS,
    NON_MPI_ROOTS,
)

__all__ = [
    "make_mock_repo",
    "make_radiuss_repo",
    "add_mpiabi_replicas",
    "RADIUSS_ROOTS",
    "MPI_DEPENDENT_ROOTS",
    "NON_MPI_ROOTS",
]
