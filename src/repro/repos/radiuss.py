"""A synthetic RADIUSS software stack (Section 6.1.2).

RADIUSS is LLNL's open-source HPC foundation: infrastructure (Flux,
LvArray), portability (RAJA, CHAI, Umpire), data/viz (GLVis, Hatchet,
VisIt), and simulation packages (Ascent, Sundials, ...).  This module
recreates its *shape*: 32 root packages over a shared substrate (cmake,
python, zlib, hdf5, BLAS, metis, ...), many with a virtual dependency
on MPI, with versions/variants/conditional dependencies representative
of the real package files.

MPI providers: mpich (the reference), openmpi (ABI-incompatible
MPI_Comm), mvapich2, the vendor-only cray-mpich (not buildable), and
the paper's mock MPIABI package that declares
``can_splice("mpich@3.4.3")``.  :func:`add_mpiabi_replicas` clones
MPIABI N times for the Figure-7 scaling experiment.

Simulated ``build_time`` values are rough real-world compile costs in
seconds, so benchmark reports can state "hours of builds avoided".
"""

from __future__ import annotations

from typing import List

from ..package import (
    Package,
    Repository,
    can_splice,
    depends_on,
    provides,
    variant,
    version,
)

__all__ = [
    "make_radiuss_repo",
    "add_mpiabi_replicas",
    "RADIUSS_ROOTS",
    "MPI_DEPENDENT_ROOTS",
    "NON_MPI_ROOTS",
]

#: the 32 RADIUSS root packages concretized in the paper's experiments
RADIUSS_ROOTS: List[str] = [
    "aluminum", "ascent", "axom", "blt", "caliper", "camp", "care",
    "chai", "conduit", "flux-core", "flux-sched", "glvis", "hatchet",
    "hypre", "lbann", "lvarray", "maestrowf", "merlin", "mfem",
    "py-shroud", "raja", "samrai", "scr", "spot", "sundials", "umap",
    "umpire", "unifyfs", "variorum", "visit", "xbraid", "zfp",
]

#: roots with a (possibly transitive) virtual dependency on MPI
MPI_DEPENDENT_ROOTS: List[str] = [
    "aluminum", "ascent", "axom", "conduit", "glvis", "hypre", "lbann",
    "mfem", "samrai", "scr", "sundials", "unifyfs", "visit", "xbraid",
]

NON_MPI_ROOTS: List[str] = [r for r in RADIUSS_ROOTS if r not in MPI_DEPENDENT_ROOTS]


def make_radiuss_repo() -> Repository:
    """Build the RADIUSS-like repository (fresh classes per call)."""
    repo = Repository("radiuss")

    # ------------------------------------------------------------------
    # substrate: build tools and common libraries
    # ------------------------------------------------------------------
    class Cmake(Package):
        version("3.27.4")
        version("3.23.1")
        version("3.20.6")
        build_time = 300

    class Gmake(Package):
        version("4.4")
        version("4.3")
        build_time = 60

    class Gcc(Package):
        """Compiler; requested with the % sigil (build dependency)."""

        version("12.3.0")
        version("11.4.0")
        version("10.5.0")
        build_time = 4000

    class Llvm(Package):
        version("16.0.6")
        version("15.0.7")
        build_time = 5000

    class Python(Package):
        version("3.11.4")
        version("3.10.8")
        version("3.9.15")
        variant("shared", default=True)
        build_time = 900

    class Perl(Package):
        version("5.38.0")
        version("5.36.0")
        build_time = 600

    class Zlib(Package):
        version("1.3")
        version("1.2.13")
        version("1.2.11")
        variant("optimize", default=True)
        variant("shared", default=True)
        provides_symbols = ("deflate", "inflate", "crc32")
        build_time = 30
        can_splice("zlib@1.2", when="@1.3")

    class Ncurses(Package):
        version("6.4")
        version("6.3")
        build_time = 120

    class Openssl(Package):
        version("3.1.2")
        version("1.1.1t")
        depends_on("zlib")
        depends_on("perl", type="build")
        build_time = 400

    class Libelf(Package):
        version("0.8.13")
        build_time = 60

    class Lua(Package):
        version("5.4.4")
        version("5.3.6")
        depends_on("ncurses")
        build_time = 90

    class Hwloc(Package):
        version("2.9.1")
        version("2.8.0")
        build_time = 150

    class Openblas(Package):
        version("0.3.23")
        version("0.3.21")
        variant("threads", default="none", values=("none", "openmp", "pthreads"))
        provides("blas")
        provides("lapack")
        provides_symbols = ("dgemm_", "dgesv_", "daxpy_")
        build_time = 700

    class Metis(Package):
        version("5.1.0")
        variant("int64", default=False)
        depends_on("cmake", type="build")
        build_time = 100

    class Hdf5(Package):
        version("1.14.1")
        version("1.12.2")
        version("1.10.9")
        variant("mpi", default=True)
        variant("shared", default=True)
        variant("cxx", default=False)
        depends_on("zlib")
        depends_on("mpi", when="+mpi")
        depends_on("cmake", type="build")
        build_time = 800

    class Parmetis(Package):
        version("4.0.3")
        depends_on("metis")
        depends_on("mpi")
        depends_on("cmake", type="build")
        build_time = 150

    class PyYaml(Package):
        version("6.0")
        version("5.4.1")
        depends_on("python")
        build_time = 20

    class PyNumpy(Package):
        version("1.25.1")
        version("1.24.3")
        depends_on("python")
        depends_on("blas")
        build_time = 300

    class PyPandas(Package):
        version("2.0.3")
        version("1.5.3")
        depends_on("python")
        depends_on("py-numpy")
        build_time = 500

    # ------------------------------------------------------------------
    # MPI implementations
    # ------------------------------------------------------------------
    class Mpich(Package):
        """The reference implementation; MPI_Comm is a 32-bit int."""

        version("4.1.1")
        version("3.4.3")
        version("3.1")
        variant("pmi", default="pmix", values=("pmix", "simple", "slurm"))
        variant("fortran", default=True)
        depends_on("hwloc")
        provides("mpi")
        provides_symbols = ("MPI_Init", "MPI_Send", "MPI_Recv", "MPI_Comm_rank",
                            "MPI_Allreduce", "MPI_Bcast")
        type_layouts = {"MPI_Comm": "int32", "MPI_Datatype": "int32"}
        build_time = 1200

    class Openmpi(Package):
        """ABI-incompatible with mpich: MPI_Comm is a struct pointer."""

        version("4.1.5")
        version("4.0.7")
        variant("fortran", default=True)
        depends_on("hwloc")
        provides("mpi")
        provides_symbols = ("MPI_Init", "MPI_Send", "MPI_Recv", "MPI_Comm_rank",
                            "MPI_Allreduce", "MPI_Bcast")
        type_layouts = {"MPI_Comm": "ptr-struct", "MPI_Datatype": "ptr-struct"}
        build_time = 1400

    class Mvapich2(Package):
        """MVAPICH follows the MPICH ABI."""

        version("2.3.7")
        depends_on("hwloc")
        provides("mpi")
        provides_symbols = ("MPI_Init", "MPI_Send", "MPI_Recv", "MPI_Comm_rank",
                            "MPI_Allreduce", "MPI_Bcast")
        type_layouts = {"MPI_Comm": "int32", "MPI_Datatype": "int32"}
        can_splice("mpich@3.4.3")
        build_time = 1300

    class CrayMpich(Package):
        """Vendor MPI: only exists as a binary on HPE Cray systems, but
        conforms to the MPICH ABI (the paper's motivating deploy case)."""

        version("8.1.25")
        buildable = False
        provides("mpi")
        provides_symbols = ("MPI_Init", "MPI_Send", "MPI_Recv", "MPI_Comm_rank",
                            "MPI_Allreduce", "MPI_Bcast")
        type_layouts = {"MPI_Comm": "int32", "MPI_Datatype": "int32"}
        can_splice("mpich@3.4.3")
        can_splice("mpich@4.1")

    class Mpiabi(Package):
        """The paper's mock splice candidate, based on MVAPICH, with a
        single version and the ability to splice into mpich@3.4.3."""

        version("1.0")
        depends_on("hwloc")
        provides("mpi")
        provides_symbols = ("MPI_Init", "MPI_Send", "MPI_Recv", "MPI_Comm_rank",
                            "MPI_Allreduce", "MPI_Bcast")
        type_layouts = {"MPI_Comm": "int32", "MPI_Datatype": "int32"}
        can_splice("mpich@3.4.3")
        build_time = 1300

    # ------------------------------------------------------------------
    # RADIUSS portability layer
    # ------------------------------------------------------------------
    class Blt(Package):
        version("0.5.3")
        version("0.5.2")
        build_time = 10

    class Camp(Package):
        version("2023.06.0")
        version("2022.10.1")
        depends_on("blt", type="build")
        depends_on("cmake", type="build")
        build_time = 120

    class Raja(Package):
        version("2023.06.0")
        version("2022.10.5")
        variant("openmp", default=True)
        variant("shared", default=True)
        depends_on("camp")
        depends_on("blt", type="build")
        depends_on("cmake", type="build")
        build_time = 400

    class Umpire(Package):
        version("2023.06.0")
        version("2022.10.0")
        variant("openmp", default=True)
        depends_on("camp")
        depends_on("blt", type="build")
        depends_on("cmake", type="build")
        build_time = 350

    class Chai(Package):
        version("2023.06.0")
        version("2022.10.0")
        depends_on("raja")
        depends_on("umpire")
        depends_on("blt", type="build")
        depends_on("cmake", type="build")
        build_time = 300

    class Care(Package):
        version("0.10.0")
        depends_on("chai")
        depends_on("raja")
        depends_on("umpire")
        depends_on("blt", type="build")
        depends_on("cmake", type="build")
        build_time = 250

    class Lvarray(Package):
        version("0.2.2")
        version("0.2.0")
        depends_on("raja")
        depends_on("umpire")
        depends_on("camp")
        depends_on("cmake", type="build")
        build_time = 300

    # ------------------------------------------------------------------
    # data, meshing, and solvers
    # ------------------------------------------------------------------
    class Conduit(Package):
        version("0.8.8")
        version("0.8.6")
        variant("mpi", default=True)
        variant("hdf5", default=True)
        depends_on("zlib")
        depends_on("hdf5", when="+hdf5")
        depends_on("mpi", when="+mpi")
        depends_on("cmake", type="build")
        build_time = 500

    class Hypre(Package):
        version("2.29.0")
        version("2.26.0")
        variant("shared", default=True)
        depends_on("mpi")
        depends_on("blas")
        depends_on("lapack")
        build_time = 600

    class Mfem(Package):
        version("4.5.2")
        version("4.5.0")
        variant("mpi", default=True)
        variant("zlib", default=True)
        depends_on("zlib", when="+zlib")
        depends_on("hypre", when="+mpi")
        depends_on("metis", when="+mpi")
        depends_on("mpi", when="+mpi")
        build_time = 900

    class Sundials(Package):
        version("6.6.0")
        version("6.5.1")
        variant("mpi", default=True)
        depends_on("mpi", when="+mpi")
        depends_on("cmake", type="build")
        build_time = 500

    class Samrai(Package):
        version("4.2.1")
        version("4.1.2")
        depends_on("hdf5+mpi")
        depends_on("mpi")
        depends_on("zlib")
        build_time = 800

    class Xbraid(Package):
        version("3.1.0")
        version("3.0.0")
        depends_on("mpi")
        build_time = 120

    class Zfp(Package):
        version("1.0.0")
        version("0.5.5")
        variant("shared", default=True)
        depends_on("cmake", type="build")
        build_time = 90

    # -- the SCR component family (real RADIUSS substructure) ----------
    class Kvtree(Package):
        version("1.3.0")
        version("1.2.0")
        variant("mpi", default=True)
        depends_on("mpi", when="+mpi")
        depends_on("cmake", type="build")
        build_time = 80

    class Axl(Package):
        version("0.7.1")
        variant("async_api", default="daemon", values=("daemon", "none"))
        depends_on("kvtree")
        depends_on("zlib")
        depends_on("cmake", type="build")
        build_time = 70

    class Spath(Package):
        version("0.2.0")
        variant("mpi", default=True)
        depends_on("mpi", when="+mpi")
        depends_on("cmake", type="build")
        build_time = 40

    class Rankstr(Package):
        version("0.1.0")
        depends_on("mpi")
        depends_on("cmake", type="build")
        build_time = 40

    class Shuffile(Package):
        version("0.1.0")
        depends_on("kvtree")
        depends_on("mpi")
        depends_on("cmake", type="build")
        build_time = 40

    class Er(Package):
        version("0.2.0")
        depends_on("kvtree")
        depends_on("rankstr")
        depends_on("shuffile")
        depends_on("mpi")
        depends_on("cmake", type="build")
        build_time = 60

    class Scr(Package):
        version("3.0.1")
        depends_on("axl")
        depends_on("er")
        depends_on("kvtree+mpi")
        depends_on("rankstr")
        depends_on("spath+mpi")
        depends_on("mpi")
        depends_on("zlib")
        depends_on("cmake", type="build")
        build_time = 300

    class Umap(Package):
        version("2.1.0")
        depends_on("cmake", type="build")
        build_time = 100

    class Unifyfs(Package):
        version("1.1")
        version("1.0.1")
        depends_on("mpi")
        depends_on("openssl")
        build_time = 350

    class Variorum(Package):
        version("0.6.0")
        depends_on("hwloc")
        depends_on("cmake", type="build")
        build_time = 150

    class Adiak(Package):
        """Metadata collection interface used by Caliper."""

        version("0.2.2")
        variant("mpi", default=False)
        depends_on("mpi", when="+mpi")
        depends_on("cmake", type="build")
        build_time = 60

    class Gotcha(Package):
        """Function-wrapping library used by Caliper."""

        version("1.0.4")
        version("1.0.3")
        depends_on("cmake", type="build")
        build_time = 50

    class Caliper(Package):
        version("2.9.1")
        version("2.8.0")
        variant("shared", default=True)
        variant("adiak", default=True)
        variant("gotcha", default=True)
        depends_on("adiak", when="+adiak")
        depends_on("gotcha", when="+gotcha")
        depends_on("cmake", type="build")
        depends_on("python", type="build")
        build_time = 300

    class Spot(Package):
        version("1.0.0")
        depends_on("caliper")
        depends_on("python")
        build_time = 60

    class Aluminum(Package):
        version("1.3.1")
        version("1.2.3")
        depends_on("mpi")
        depends_on("hwloc")
        depends_on("cmake", type="build")
        build_time = 350

    class Lbann(Package):
        version("0.102")
        depends_on("aluminum")
        depends_on("conduit+mpi")
        depends_on("mpi")
        depends_on("blas")
        depends_on("python", type="build")
        depends_on("cmake", type="build")
        build_time = 3000

    class Ascent(Package):
        version("0.9.1")
        version("0.9.0")
        variant("mpi", default=True)
        depends_on("conduit+mpi", when="+mpi")
        depends_on("conduit~mpi", when="~mpi")
        depends_on("raja")
        depends_on("mpi", when="+mpi")
        depends_on("cmake", type="build")
        build_time = 1200

    class Axom(Package):
        version("0.8.1")
        version("0.7.0")
        depends_on("conduit+mpi")
        depends_on("raja")
        depends_on("umpire")
        depends_on("mfem+mpi")
        depends_on("mpi")
        depends_on("cmake", type="build")
        build_time = 1500

    class Glvis(Package):
        version("4.2")
        version("4.1")
        depends_on("mfem+mpi")
        depends_on("zlib")
        build_time = 400

    class Visit(Package):
        version("3.3.3")
        version("3.3.1")
        variant("mpi", default=True)
        depends_on("hdf5+mpi", when="+mpi")
        depends_on("conduit+mpi", when="+mpi")
        depends_on("mfem+mpi", when="+mpi")
        depends_on("mpi", when="+mpi")
        depends_on("zlib")
        depends_on("python")
        depends_on("cmake", type="build")
        build_time = 7200

    # ------------------------------------------------------------------
    # workflow / tooling (python-based; the non-MPI control group)
    # ------------------------------------------------------------------
    class FluxCore(Package):
        version("0.53.0")
        version("0.49.0")
        depends_on("zlib")
        depends_on("lua")
        depends_on("hwloc")
        depends_on("python")
        depends_on("ncurses")
        build_time = 600

    class FluxSched(Package):
        version("0.27.0")
        depends_on("flux-core")
        depends_on("cmake", type="build")
        build_time = 300

    class Hatchet(Package):
        version("1.3.1")
        depends_on("python")
        depends_on("py-numpy")
        depends_on("py-pandas")
        build_time = 60

    class PyShroud(Package):
        """Code-generator, pure python — the paper's no-splice control."""

        version("0.12.2")
        version("0.11.0")
        depends_on("python")
        depends_on("py-yaml")
        build_time = 30

    class Maestrowf(Package):
        version("1.1.9")
        depends_on("python")
        depends_on("py-yaml")
        build_time = 30

    class Merlin(Package):
        version("1.10.3")
        depends_on("python")
        depends_on("py-yaml")
        depends_on("py-pandas")
        build_time = 40

    for cls in (
        Cmake, Gmake, Gcc, Llvm, Python, Perl, Zlib, Ncurses, Openssl, Libelf, Lua,
        Hwloc, Openblas, Metis, Hdf5, Parmetis, PyYaml, PyNumpy, PyPandas,
        Mpich, Openmpi, Mvapich2, CrayMpich, Mpiabi,
        Blt, Camp, Raja, Umpire, Chai, Care, Lvarray,
        Conduit, Hypre, Mfem, Sundials, Samrai, Xbraid, Zfp,
        Kvtree, Axl, Spath, Rankstr, Shuffile, Er, Scr, Umap,
        Adiak, Gotcha,
        Unifyfs, Variorum, Caliper, Spot, Aluminum, Lbann, Ascent, Axom,
        Glvis, Visit, FluxCore, FluxSched, Hatchet, PyShroud, Maestrowf,
        Merlin,
    ):
        repo.add(cls)

    repo.provider_preferences["mpi"] = ["mpich", "mvapich2", "openmpi"]
    repo.provider_preferences["blas"] = ["openblas"]
    repo.provider_preferences["lapack"] = ["openblas"]
    return repo


def add_mpiabi_replicas(repo: Repository, count: int) -> List[str]:
    """Add ``count`` copies of MPIABI differing only in name (Section
    6.4's scaling workload).  Returns the replica package names."""
    names: List[str] = []
    for i in range(count):
        name = f"mpiabi{i}"

        class Replica(Package):
            version("1.0")
            provides("mpi")
            provides_symbols = (
                "MPI_Init", "MPI_Send", "MPI_Recv", "MPI_Comm_rank",
                "MPI_Allreduce", "MPI_Bcast",
            )
            type_layouts = {"MPI_Comm": "int32", "MPI_Datatype": "int32"}
            can_splice("mpich@3.4.3")
            build_time = 1300

        Replica.name = name
        Replica.__name__ = f"Mpiabi{i}"
        repo.add(Replica)
        names.append(name)
    return names
