"""repro — a reproduction of "Bridging the Gap Between Binary and Source
Based Package Management in Spack" (SC 2025).

Public API tour::

    from repro import (
        Spec, parse, Repository, Package,            # spec + DSL layers
        version, variant, depends_on, provides,      # directives
        can_splice,                                  # the paper's addition
        Concretizer,                                 # ASP-backed resolver
        BuildCache, Installer, Loader,               # binary substrate
    )

Subpackages:

* :mod:`repro.spec` — versions, variants, the Spec DAG, parser
* :mod:`repro.asp` — a from-scratch ASP engine (grounder + CDCL +
  stable models + optimization), the clingo stand-in
* :mod:`repro.package` — the packaging DSL and repositories
* :mod:`repro.concretize` — the concretizer with reuse and splicing
* :mod:`repro.buildcache` — binary caches and synthetic generators
* :mod:`repro.binary` — mock-ELF, ABI model, relocation, rewiring, loader
* :mod:`repro.installer` — simulated builds, install DB, rewire installs
* :mod:`repro.repos` — the paper's mock packages and the RADIUSS stack
* :mod:`repro.bench` — the benchmark harness for Figures 5–7
* :mod:`repro.obs` — structured tracing (spans), metrics, and the
  Chrome-trace/phase-table exporters every layer reports through
"""

from .spec import (
    Spec,
    Version,
    VersionList,
    VariantMap,
    parse,
    parse_one,
    tree,
    SpecError,
    UnsatisfiableSpecError,
)
from .package import (
    Package,
    PackageBase,
    Repository,
    version,
    variant,
    depends_on,
    provides,
    conflicts,
    requires,
    can_splice,
)
from .concretize import Concretizer, ConcretizationResult, UnsatisfiableError
from .buildcache import BuildCache, greedy_concretize, external_spec
from .installer import Installer, Database
from .binary import Loader, MockBinary, check_abi_compatibility

__version__ = "1.0.0"

__all__ = [
    "Spec",
    "Version",
    "VersionList",
    "VariantMap",
    "parse",
    "parse_one",
    "tree",
    "SpecError",
    "UnsatisfiableSpecError",
    "Package",
    "PackageBase",
    "Repository",
    "version",
    "variant",
    "depends_on",
    "provides",
    "conflicts",
    "requires",
    "can_splice",
    "Concretizer",
    "ConcretizationResult",
    "UnsatisfiableError",
    "BuildCache",
    "greedy_concretize",
    "external_spec",
    "Installer",
    "Database",
    "Loader",
    "MockBinary",
    "check_abi_compatibility",
    "__version__",
]
