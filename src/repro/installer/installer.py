"""The installer: turn concrete specs into an installed software store.

For every node of a concretized DAG (dependencies first) the installer
picks one of four paths:

1. **already installed** — hash present in the database: skip;
2. **external** — register the vendor-provided prefix (e.g. cray-mpich);
3. **spliced** — the node carries a build spec (Section 4): install the
   build spec's binary (from the cache), then *rewire* it against the
   spliced dependencies (Section 4.2) — no compilation;
4. **cached** — payload in a buildcache: extract + relocate;
5. **source build** — simulate the build with :class:`Builder`.

The report distinguishes these paths so the benchmarks can count
"builds avoided by splicing".
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from ..binary.abi import AbiReport, check_abi_compatibility
from ..binary.mockelf import MockBinary, BinaryFormatError
from ..binary.rewire import plan_rewire, rewire_binary, RewireError
from ..buildcache.cache import BuildCache
from ..obs import metrics, trace
from ..package.repository import Repository
from ..spec import Spec, DEPTYPE_LINK_RUN
from .builder import Builder, BuildError, prefix_name
from .database import Database

__all__ = ["Installer", "InstallReport", "InstallError"]

logger = logging.getLogger(__name__)


class InstallError(RuntimeError):
    """Raised when a spec cannot be installed by any path."""


@dataclass
class InstallReport:
    """What the installer did, per path."""

    installed: List[Spec] = field(default_factory=list)
    built: List[str] = field(default_factory=list)
    extracted: List[str] = field(default_factory=list)
    rewired: List[str] = field(default_factory=list)
    externals: List[str] = field(default_factory=list)
    already: List[str] = field(default_factory=list)
    simulated_build_time: float = 0.0

    def summary(self) -> str:
        return (
            f"built={len(self.built)} extracted={len(self.extracted)} "
            f"rewired={len(self.rewired)} external={len(self.externals)} "
            f"cached-locally={len(self.already)}"
        )


class Installer:
    """Installs concrete specs into a store directory."""

    def __init__(
        self,
        store_root: Path,
        repo: Repository,
        caches: Sequence[BuildCache] = (),
        verify_abi: bool = True,
        fetch_jobs: int = 1,
    ):
        self.store_root = Path(store_root)
        self.repo = repo
        self.caches = list(caches)
        self.verify_abi = verify_abi
        #: workers for the pipelined cache fetch/verify stage (the
        #: ``--fetch-jobs`` knob); >1 also runs node extraction through
        #: the DAG scheduler so independent extracts overlap
        self.fetch_jobs = max(int(fetch_jobs), 1)
        self.database = Database(self.store_root)
        self.builder = Builder(repo)
        #: active PayloadPrefetcher during a pipelined wave (else None)
        self._prefetcher = None

    # ------------------------------------------------------------------
    def prefix_for(self, spec: Spec) -> Path:
        return self.store_root / prefix_name(spec)

    def _dep_prefix(self, spec: Spec) -> str:
        return self.database.prefix_of(spec)

    # ------------------------------------------------------------------
    def install(self, spec: Spec, explicit: bool = True, jobs: int = 1) -> InstallReport:
        """Install a concrete spec and its dependencies (deps first).

        ``jobs > 1`` builds independent DAG nodes concurrently (the
        ``spack install -j`` analogue, :mod:`repro.installer.parallel`).
        An installer constructed with ``fetch_jobs > 1`` pipelines the
        binary hot path: blob fetch + signature verify of cache hits
        run on their own bounded pool while extraction of independent
        nodes overlaps in the DAG scheduler.
        """
        if not spec.concrete:
            raise InstallError(f"cannot install abstract spec {spec}")
        if jobs > 1 or self.fetch_jobs > 1:
            return self._install_parallel([spec], jobs)
        report = InstallReport()
        with trace.span("install.run", root=spec.name, jobs=1):
            for node in spec.traverse(order="post"):
                self._install_node(node, node is spec and explicit, report)
            self.database.save()
        report.simulated_build_time = self.builder.simulated_build_time
        logger.info("installed %s: %s", spec.name, report.summary())
        return report

    def install_all(self, specs: Sequence[Spec], jobs: int = 1) -> InstallReport:
        if jobs > 1 or self.fetch_jobs > 1:
            return self._install_parallel(specs, jobs)
        report = InstallReport()
        with trace.span("install.run", roots=len(specs), jobs=1):
            for spec in specs:
                for node in spec.traverse(order="post"):
                    self._install_node(node, node is spec, report)
            self.database.save()
        report.simulated_build_time = self.builder.simulated_build_time
        logger.info("installed %d root(s): %s", len(specs), report.summary())
        return report

    def _install_parallel(self, specs: Sequence[Spec], jobs: int) -> InstallReport:
        from .parallel import run_parallel_install

        report = InstallReport()
        # the fetch pipeline needs node-level concurrency for extraction
        # overlap, so the worker pool is at least fetch_jobs wide
        plan = run_parallel_install(
            self, specs, max(jobs, self.fetch_jobs), report=report,
            fetch_jobs=self.fetch_jobs,
        )
        if plan.failed:
            failures = "; ".join(f"{k}: {v}" for k, v in plan.failed.items())
            raise InstallError(
                f"parallel install failed for {failures} "
                f"(skipped dependents: {sorted(plan.skipped)})"
            )
        report.simulated_build_time = self.builder.simulated_build_time
        return report

    # ------------------------------------------------------------------
    def _install_node_locked(self, node: Spec, explicit: bool, report, lock) -> None:
        """Thread-safe node install: database reads/writes serialize
        under ``lock``; the slow work (build / extract / rewire) runs
        outside it.  Dependencies must already be installed."""
        h = node.dag_hash()
        with lock:
            if self.database.get(h) is not None:
                report.already.append(node.name)
                if explicit:
                    self.database.add(node, self.database.prefix_of(node), True)
                return
            if node.external:
                if not node.external_prefix:
                    raise InstallError(f"external {node.name} has no prefix")
                self.database.add(node, node.external_prefix, explicit)
                report.externals.append(node.name)
                report.installed.append(node)
                return
        prefix = self.prefix_for(node)
        if node.spliced:
            self._install_spliced(node, prefix, report)
        elif self._try_extract(node, prefix, report):
            pass
        else:
            self._build(node, prefix, report)
        with lock:
            self.database.add(node, str(prefix), explicit)
            report.installed.append(node)

    def _install_node(self, node: Spec, explicit: bool, report: InstallReport) -> None:
        if self.database.get(node.dag_hash()) is not None:
            report.already.append(node.name)
            if explicit:
                self.database.add(node, self.database.prefix_of(node), True)
            return
        if node.external:
            if not node.external_prefix:
                raise InstallError(f"external {node.name} has no prefix")
            self.database.add(node, node.external_prefix, explicit)
            report.externals.append(node.name)
            report.installed.append(node)
            return

        prefix = self.prefix_for(node)
        if node.spliced:
            self._install_spliced(node, prefix, report)
        elif self._try_extract(node, prefix, report):
            pass
        else:
            self._build(node, prefix, report)
        self.database.add(node, str(prefix), explicit)
        report.installed.append(node)

    def _dep_prefix_map(self, meta: dict) -> Dict[str, str]:
        """Build-machine dependency prefixes -> local store prefixes.

        Dependency references in a cached binary point at the build
        machine's prefixes; extraction rewrites them to the consumer's.
        """
        prefix_map: Dict[str, str] = {}
        for dep_hash, old_prefix in meta.get("dep_prefixes", {}).items():
            record = self.database.get(dep_hash)
            if record is not None and old_prefix:
                prefix_map[old_prefix] = record.prefix
        return prefix_map

    def _try_extract(self, node: Spec, prefix: Path, report: InstallReport) -> bool:
        h = node.dag_hash()
        prefetcher = self._prefetcher
        if prefetcher is not None:
            prefetched = prefetcher.take(h)
            if prefetched is not None:
                # fetch + verify already happened on the fetch pool;
                # only relocation + writing remains on this worker
                cache, payload = prefetched
                metrics.inc("buildcache.hits")
                with trace.span("install.extract", name=node.name):
                    cache.extract_payload(
                        payload, prefix,
                        extra_prefix_map=self._dep_prefix_map(payload.meta),
                    )
                report.extracted.append(node.name)
                logger.debug(
                    "extracted %s/%s from prefetched payload", node.name, h[:7]
                )
                return True
        for cache in self.caches:
            if h in cache and cache.has_payload(h):
                metrics.inc("buildcache.hits")
                with trace.span("install.extract", name=node.name):
                    meta = cache.meta(h)
                    cache.extract(
                        h, prefix, extra_prefix_map=self._dep_prefix_map(meta)
                    )
                report.extracted.append(node.name)
                logger.debug("extracted %s/%s from cache", node.name, h[:7])
                return True
        if self.caches:
            metrics.inc("buildcache.misses")
        return False

    def push_to_cache(self, cache: BuildCache, spec: Spec) -> None:
        """Push an installed spec DAG (deps included) to a buildcache,
        recording build-machine prefixes for later relocation."""
        for node in spec.traverse(order="post"):
            if node.external:
                continue
            dep_prefixes = {
                d.spec.dag_hash(): self.database.prefix_of(d.spec)
                for d in node.edges(DEPTYPE_LINK_RUN)
            }
            cache.push(
                node,
                Path(self.database.prefix_of(node)),
                dep_prefixes=dep_prefixes,
            )
        cache.save_index()

    def _build(self, node: Spec, prefix: Path, report: InstallReport) -> None:
        try:
            with trace.span("install.build", name=node.name):
                self.builder.build(node, prefix, self._dep_prefix)
        except BuildError as e:
            raise InstallError(str(e)) from e
        report.built.append(node.name)
        logger.debug("built %s from source", node.name)

    # ------------------------------------------------------------------
    def _install_spliced(self, node: Spec, prefix: Path, report: InstallReport) -> None:
        """Install a spliced spec: fetch its build spec's binaries and
        rewire them against the spliced dependencies."""
        with trace.span("install.rewire", name=node.name):
            self._install_spliced_inner(node, prefix, report)
        logger.debug("rewired %s (spliced, no rebuild)", node.name)

    def _install_spliced_inner(
        self, node: Spec, prefix: Path, report: InstallReport
    ) -> None:
        build_spec = node.build_spec
        source_prefix, old_prefixes = self._locate_build_spec(build_spec)

        def old_prefix_of(dep: Spec) -> str:
            recorded = old_prefixes.get(dep.dag_hash())
            if recorded:
                return recorded
            record = self.database.get(dep.dag_hash())
            if record is not None:
                return record.prefix
            if dep.external and dep.external_prefix:
                return dep.external_prefix
            raise InstallError(
                f"cannot determine the original prefix of {dep.name} "
                f"(build spec dependency of {node.name})"
            )

        plan = plan_rewire(node, self._dep_prefix, old_prefix_of=old_prefix_of)

        prefix.mkdir(parents=True, exist_ok=True)
        checker = self._abi_checker() if self.verify_abi else None
        for source in sorted(Path(source_prefix).rglob("*")):
            if not source.is_file():
                continue
            rel = source.relative_to(source_prefix)
            target = prefix / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            data = source.read_bytes()
            try:
                binary = MockBinary.from_bytes(data)
            except BinaryFormatError:
                target.write_bytes(data)
                continue
            # first relocate build-prefix references, then rewire deps
            from ..binary.relocate import relocate_binary

            binary = relocate_binary(
                binary, {str(source_prefix): str(prefix)}
            ).binary
            patched = rewire_binary(binary, plan, check_abi=checker)
            patched.write(target)
        self._discard_staging(Path(source_prefix))
        report.rewired.append(node.name)

    def _discard_staging(self, source_prefix: Path) -> None:
        """Drop a staged build-spec extraction once its rewire succeeded.

        Leftover ``.staging`` trees read as interrupted installs to a
        store audit (STORE002); only failed rewires should leave one.
        """
        import shutil

        staging_root = self.store_root / ".staging"
        if staging_root not in source_prefix.parents:
            return
        shutil.rmtree(source_prefix, ignore_errors=True)
        try:
            staging_root.rmdir()
        except OSError:
            pass  # other extractions still staged

    # ------------------------------------------------------------------
    # uninstall and garbage collection
    # ------------------------------------------------------------------
    def uninstall(self, spec: Spec, force: bool = False) -> None:
        """Remove an installed spec (prefix + database record).

        Refuses when other installed specs still depend on it, unless
        ``force`` — the dependents would be left with dangling RPATHs.
        """
        h = spec.dag_hash()
        record = self.database.get(h)
        if record is None:
            raise InstallError(f"{spec.name}/{h[:7]} is not installed")
        if not force:
            dependents = [
                r.spec.name
                for r in self.database.query()
                if r.spec.dag_hash() != h
                and any(
                    e.spec.dag_hash() == h for e in r.spec.edges()
                )
            ]
            if dependents:
                raise InstallError(
                    f"cannot uninstall {spec.name}: required by "
                    f"{', '.join(sorted(dependents))} (use force=True)"
                )
        import shutil

        if not record.spec.external:
            shutil.rmtree(record.prefix, ignore_errors=True)
        self.database.remove(h)
        self.database.save()

    def gc(self) -> List[str]:
        """Garbage-collect: remove every installed spec not reachable
        from an explicitly-installed root (``spack gc``).  Returns the
        names of removed specs, dependents-first."""
        keep: set = set()
        for record in self.database.query():
            if record.explicit:
                for node in record.spec.traverse():
                    keep.add(node.dag_hash())
        # also keep build specs of spliced installs: their binaries may
        # be referenced by staging or future rewires? No — build specs
        # are provenance, not installs; only installed hashes matter.
        doomed = [
            r.spec for r in self.database.query() if r.spec.dag_hash() not in keep
        ]
        # remove dependents before dependencies
        removed: List[str] = []
        remaining = {s.dag_hash() for s in doomed}
        while remaining:
            progressed = False
            for spec in list(doomed):
                h = spec.dag_hash()
                if h not in remaining:
                    continue
                has_remaining_dependent = any(
                    other.dag_hash() in remaining
                    and any(e.spec.dag_hash() == h for e in other.edges())
                    for other in doomed
                )
                if not has_remaining_dependent:
                    self.uninstall(spec, force=True)
                    removed.append(spec.name)
                    remaining.discard(h)
                    progressed = True
            if not progressed:  # cycle cannot happen, but never hang
                for spec in doomed:
                    if spec.dag_hash() in remaining:
                        self.uninstall(spec, force=True)
                        removed.append(spec.name)
                        remaining.discard(spec.dag_hash())
        return removed

    def verify(self) -> Dict[str, List[str]]:
        """Integrity-check the store: every installed binary must load
        (NEEDED resolution, symbols, layouts).  Returns {name: problems}
        for broken installs — empty dict means a healthy store."""
        from ..binary.loader import Loader
        from ..binary.mockelf import BinaryFormatError, MockBinary

        loader = Loader()
        problems: Dict[str, List[str]] = {}
        for record in self.database.query():
            if record.spec.external:
                continue
            prefix = Path(record.prefix)
            issues: List[str] = []
            if not prefix.is_dir():
                issues.append("install prefix missing")
            else:
                for path in sorted(prefix.rglob("*")):
                    if not path.is_file():
                        continue
                    try:
                        MockBinary.read(path)
                    except (BinaryFormatError, OSError):
                        continue
                    result = loader.load(str(path))
                    if not result.ok:
                        issues.append(f"{path.name}: {result.explain()}")
            if issues:
                problems[record.spec.name] = issues
        return problems

    def _abi_checker(self) -> Callable[[Spec, Spec], AbiReport]:
        def check(old: Spec, new: Spec) -> AbiReport:
            old_cls = self.repo.get(old.name)
            new_cls = self.repo.get(new.name)
            old_bin = MockBinary(
                soname=f"lib{old.name}.so",
                defined_symbols=list(old_cls.exported_symbols(old)),
                type_layouts=dict(old_cls.exported_type_layouts(old)),
            )
            new_bin = MockBinary(
                soname=f"lib{new.name}.so",
                defined_symbols=list(new_cls.exported_symbols(new)),
                type_layouts=dict(new_cls.exported_type_layouts(new)),
            )
            return check_abi_compatibility(new_bin, old_bin)

        return check

    def _locate_build_spec(self, build_spec: Spec) -> tuple:
        """Find binaries for the build spec: installed locally, else in
        a cache (staged without relocation, so its references still
        point at the recorded build-machine prefixes).

        Returns ``(source_prefix, old_dep_prefixes)`` where the mapping
        gives each dependency's location at build time (by hash).
        """
        record = self.database.get(build_spec.dag_hash())
        if record is not None:
            return Path(record.prefix), {}
        h = build_spec.dag_hash()
        for cache in self.caches:
            if h in cache and cache.has_payload(h):
                meta = cache.meta(h)
                staging = self.store_root / ".staging" / prefix_name(build_spec)
                if not staging.exists():
                    cache.extract(h, staging)
                return staging, dict(meta.get("dep_prefixes", {}))
        raise InstallError(
            f"no binary for build spec {build_spec.name}/{h[:7]}: splicing "
            "requires the original binary to relink"
        )
