"""Simulated source builds: produce MockBinary artifacts in a prefix.

A "build" of a concrete spec creates, per library the package declares,
a :class:`~repro.binary.mockelf.MockBinary` whose dynamic section links
against the spec's link-run dependencies (NEEDED sonames + RPATHs to
their install prefixes) and whose ABI surface (symbols, type layouts)
comes from the package class — so the layouts a binary was *compiled
against* travel with it, exactly the property Section 2.1's MPI_Comm
example needs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List

from ..binary.mockelf import MockBinary
from ..package.repository import Repository
from ..spec import Spec, DEPTYPE_LINK_RUN

__all__ = ["Builder", "BuildError", "prefix_name"]


class BuildError(RuntimeError):
    """Raised when a spec cannot be built (not concrete, unknown pkg,
    or marked not buildable)."""


def prefix_name(spec: Spec) -> str:
    """Directory name for a spec's install prefix."""
    return f"{spec.name}-{spec.version}-{spec.dag_hash(16)}"


class Builder:
    """Builds concrete specs into install prefixes."""

    def __init__(self, repo: Repository, time_scale: float = 0.0):
        self.repo = repo
        #: cumulative simulated build cost (seconds of "compilation")
        self.simulated_build_time = 0.0
        self.build_count = 0
        #: wall-clock seconds slept per simulated build second; 0 means
        #: builds are instantaneous (tests of parallel installs raise it
        #: to make speedups observable)
        self.time_scale = time_scale

    def build(
        self,
        spec: Spec,
        prefix: Path,
        dep_prefix: Callable[[Spec], str],
    ) -> List[Path]:
        """Build ``spec`` into ``prefix``; returns the artifact paths.

        ``dep_prefix`` resolves each link-run dependency node to its
        install prefix (the installer passes its database lookup).
        """
        if not spec.concrete:
            raise BuildError(f"cannot build abstract spec {spec}")
        pkg_cls = self.repo.get(spec.name)
        if not pkg_cls.buildable:
            raise BuildError(f"package {spec.name} is not buildable")

        prefix = Path(prefix)
        lib_dir = prefix / "lib"
        bin_dir = prefix / "bin"
        lib_dir.mkdir(parents=True, exist_ok=True)

        link_deps = spec.dependencies(DEPTYPE_LINK_RUN)
        needed = [f"lib{d.name}.so" for d in link_deps]
        rpaths = [str(Path(dep_prefix(d)) / "lib") for d in link_deps]

        # Imported ABI surface: symbols and layouts of every dependency
        undefined: List[str] = []
        layouts: Dict[str, str] = {}
        for dep in link_deps:
            dep_cls = self.repo.get(dep.name)
            dep_symbols = dep_cls.exported_symbols(dep)
            if dep_symbols:
                undefined.append(dep_symbols[0])
            layouts.update(dep_cls.exported_type_layouts(dep))
        layouts.update(pkg_cls.exported_type_layouts(spec))

        artifacts: List[Path] = []
        common = dict(
            needed=list(needed),
            rpaths=list(rpaths),
            undefined_symbols=list(undefined),
            type_layouts=dict(layouts),
            path_blob=[str(prefix)] + [str(p) for p in rpaths],
            built_from=spec.dag_hash(),
        )
        for library in pkg_cls.libraries():
            binary = MockBinary(
                soname=library,
                defined_symbols=list(pkg_cls.exported_symbols(spec)),
                **{k: (v.copy() if hasattr(v, "copy") else v) for k, v in common.items()},
            )
            path = lib_dir / library
            binary.write(path)
            artifacts.append(path)
        for executable in pkg_cls.binaries():
            bin_dir.mkdir(parents=True, exist_ok=True)
            binary = MockBinary(
                soname=executable,
                defined_symbols=["main"],
                **{k: (v.copy() if hasattr(v, "copy") else v) for k, v in common.items()},
            )
            path = bin_dir / executable
            binary.write(path)
            artifacts.append(path)

        if self.time_scale > 0:
            import time

            time.sleep(pkg_cls.build_time * self.time_scale)
        self.simulated_build_time += pkg_cls.build_time
        self.build_count += 1
        return artifacts
