"""The install database: which concrete specs are installed where.

A JSON-backed record per installed spec: the full spec document (so the
DAG, including splice provenance, survives restarts), its install
prefix, and whether it was installed explicitly or as a dependency.
Build specs referenced by spliced records are stored alongside so
provenance is never dangling.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from ..spec import Spec

__all__ = ["Database", "InstallRecord", "DatabaseError"]


class DatabaseError(RuntimeError):
    """Raised on corrupt databases or conflicting installs."""


class InstallRecord:
    """One installed spec."""

    __slots__ = ("spec", "prefix", "explicit")

    def __init__(self, spec: Spec, prefix: str, explicit: bool = False):
        self.spec = spec
        self.prefix = prefix
        self.explicit = explicit

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "prefix": self.prefix,
            "explicit": self.explicit,
        }


class Database:
    """Hash-indexed registry of installed specs."""

    def __init__(self, root: Path):
        self.root = Path(root)
        self.path = self.root / "db.json"
        self._records: Dict[str, InstallRecord] = {}
        #: build-spec documents referenced by spliced installs
        self._build_specs: Dict[str, Spec] = {}
        if self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    def add(self, spec: Spec, prefix: str, explicit: bool = False) -> InstallRecord:
        h = spec.dag_hash()
        existing = self._records.get(h)
        if existing is not None:
            if existing.prefix != prefix:
                raise DatabaseError(
                    f"{spec.name}/{h} already installed at {existing.prefix}"
                )
            if explicit:
                existing.explicit = True
            return existing
        record = InstallRecord(spec, prefix, explicit)
        self._records[h] = record
        if spec.build_spec is not None:
            self._build_specs[spec.build_spec.dag_hash()] = spec.build_spec
        return record

    def remove(self, hash_: str) -> None:
        self._records.pop(hash_, None)

    # ------------------------------------------------------------------
    def get(self, hash_: str) -> Optional[InstallRecord]:
        return self._records.get(hash_)

    def prefix_of(self, spec: Spec) -> str:
        record = self._records.get(spec.dag_hash())
        if record is None:
            if spec.external and spec.external_prefix:
                return spec.external_prefix
            raise DatabaseError(f"{spec.name}/{spec.dag_hash(7)} is not installed")
        return record.prefix

    def is_installed(self, spec: Spec) -> bool:
        return spec.dag_hash() in self._records or spec.external

    def query(self, name: Optional[str] = None) -> List[InstallRecord]:
        records = sorted(
            self._records.values(), key=lambda r: (r.spec.name or "", r.spec.dag_hash())
        )
        if name is None:
            return records
        return [r for r in records if r.spec.name == name]

    def all_specs(self) -> List[Spec]:
        return [r.spec for r in self.query()]

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[InstallRecord]:
        return iter(self.query())

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        build_specs = {}
        for record in self._records.values():
            for node in record.spec.traverse():
                if node.build_spec is not None:
                    bs = node.build_spec
                    build_specs[bs.dag_hash()] = bs.to_dict()
        payload = {
            "version": 1,
            "records": {h: r.to_dict() for h, r in self._records.items()},
            "build_specs": build_specs,
        }
        self.path.write_text(json.dumps(payload, indent=1, sort_keys=True))

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text())
        except json.JSONDecodeError as e:
            raise DatabaseError(f"corrupt database {self.path}: {e}") from e
        if payload.get("version") != 1:
            raise DatabaseError(f"unsupported database version in {self.path}")
        self._build_specs = {
            h: Spec.from_dict(doc) for h, doc in payload.get("build_specs", {}).items()
        }
        for h, rec in payload["records"].items():
            spec = Spec.from_dict(rec["spec"], build_spec_lookup=self._lookup_build)
            self._records[h] = InstallRecord(
                spec, rec["prefix"], rec.get("explicit", False)
            )

    def _lookup_build(self, hash_: str) -> Optional[Spec]:
        return self._build_specs.get(hash_)
