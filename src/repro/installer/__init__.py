"""Installer subsystem: simulated builds, the install database, and the
install/extract/rewire pipeline."""

from .builder import Builder, BuildError, prefix_name
from .database import Database, InstallRecord, DatabaseError
from .installer import Installer, InstallReport, InstallError

__all__ = [
    "Builder",
    "BuildError",
    "prefix_name",
    "Database",
    "InstallRecord",
    "DatabaseError",
    "Installer",
    "InstallReport",
    "InstallError",
]
