"""Parallel installation: build independent DAG nodes concurrently.

The analogue of ``spack install -jN``: nodes of the (merged) dependency
DAG are installed as soon as every dependency is in the database, with
up to ``jobs`` simultaneous workers.  Correctness invariants:

* a node never starts before all of its link-run AND build dependencies
  finished (they may come from different roots' DAGs — dedup by hash);
* the install database is only touched under a lock;
* a failed node poisons its transitive dependents (they are skipped and
  reported), but independent subtrees keep going — one broken package
  does not abort the whole wave, matching Spack's ``--keep-going``
  behaviour.

The module also hosts :class:`PayloadPrefetcher`, the fetch half of the
pipelined binary-install hot path (``--fetch-jobs``): blob fetch +
signature verify of every cache-hit node starts immediately on its own
bounded pool — those stages have no DAG-ordering requirement — while
extraction (which needs dependency prefixes from the database) stays
DAG-ordered in the install workers.  Fetching node B thus overlaps
extracting node A even when B depends on A.
"""

from __future__ import annotations

import logging
import threading
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..obs import metrics, trace
from ..spec import Spec

__all__ = ["ParallelPlan", "PayloadPrefetcher", "run_parallel_install"]

logger = logging.getLogger(__name__)


class PayloadPrefetcher:
    """Bounded-pool prefetch of cache payloads (fetch + verify stages).

    For every wave node that is a buildcache hit and not already in the
    install database, a fetch task reads the blob into memory and, when
    the cache carries a trust policy, verifies the signed manifest over
    those bytes.  The DAG-ordered install worker later collects the
    payload with :meth:`take` and only pays relocation + writing.

    Observability: each task runs under an ``installer.fetch`` span, and
    the ``installer.fetch_occupancy`` histogram samples how many fetch
    workers were busy at each task start — its max exceeding 1 is the
    proof that stages overlapped.
    """

    def __init__(self, installer, nodes: Dict[str, Spec], fetch_jobs: int):
        self._lock = threading.Lock()
        self._busy = 0
        self._futures: Dict[str, "Future[Tuple[object, object]]"] = {}
        self._pool = ThreadPoolExecutor(
            max_workers=max(fetch_jobs, 1), thread_name_prefix="fetch"
        )
        for h, node in nodes.items():
            if installer.database.get(h) is not None or node.external:
                continue
            for cache in installer.caches:
                if h in cache and cache.has_payload(h):
                    self._futures[h] = self._pool.submit(
                        self._fetch_one, cache, node, h
                    )
                    break

    def _fetch_one(self, cache, node: Spec, h: str):
        with self._lock:
            self._busy += 1
            occupancy = self._busy
        metrics.observe("installer.fetch_occupancy", occupancy)
        try:
            with trace.span("installer.fetch", name=node.name, hash=h[:7]) as sp:
                payload = cache.fetch(h)
                cache.verify_payload(payload)
                # per-mirror attribution: which cache/mirror actually
                # served the bytes (a MirrorGroup may have fallen back)
                sp.set(bytes=payload.size, mirror=payload.source)
            return cache, payload
        finally:
            with self._lock:
                self._busy -= 1

    def take(self, dag_hash: str):
        """The (cache, payload) pair for a prefetched node, or ``None``.

        Blocks until the in-flight fetch finishes; re-raises its error
        (a corrupt or tampered entry must fail the node exactly as the
        serial path would).
        """
        future = self._futures.pop(dag_hash, None)
        if future is None:
            return None
        return future.result()

    @property
    def prefetched(self) -> int:
        return len(self._futures)

    def close(self) -> None:
        for future in self._futures.values():
            future.cancel()
        self._pool.shutdown(wait=False)
        self._futures.clear()


@dataclass
class ParallelPlan:
    """Outcome bookkeeping for one parallel install run."""

    installed: List[str] = field(default_factory=list)
    failed: Dict[str, str] = field(default_factory=dict)
    skipped: List[str] = field(default_factory=list)
    #: high-water mark of simultaneously running builds (observability)
    max_concurrency: int = 0


def run_parallel_install(
    installer, specs: Sequence[Spec], jobs: int, report=None,
    fetch_jobs: int = 1,
) -> ParallelPlan:
    """Install the merged DAG of ``specs`` with ``jobs`` workers.

    ``installer`` is a :class:`~repro.installer.installer.Installer`;
    its per-node entry point is invoked under a scheduler that releases
    a node once all its dependencies are installed.  Per-path counters
    accumulate into ``report`` when given.  With ``fetch_jobs > 1`` a
    :class:`PayloadPrefetcher` overlaps blob fetch + verify of cache
    hits with the DAG-ordered extraction; database writes stay
    serialized under the scheduler lock either way.
    """
    # ---- build the hash-level DAG (merged across roots) ---------------
    nodes: Dict[str, Spec] = {}
    dependents: Dict[str, Set[str]] = {}
    remaining: Dict[str, int] = {}
    explicit: Set[str] = set()
    for spec in specs:
        explicit.add(spec.dag_hash())
        for node in spec.traverse():
            h = node.dag_hash()
            if h in nodes:
                continue
            nodes[h] = node
            deps = {e.spec.dag_hash() for e in node.edges()}
            remaining[h] = len(deps)
            for dep in deps:
                dependents.setdefault(dep, set()).add(h)
    # dedupe edge counts for nodes discovered after their dependents
    for h, node in nodes.items():
        remaining[h] = len({e.spec.dag_hash() for e in node.edges()})

    plan = ParallelPlan()
    lock = threading.Lock()
    running = 0
    poisoned: Set[str] = set()

    if report is None:
        from .installer import InstallReport

        report = InstallReport()

    def ready_nodes() -> List[str]:
        return [
            h
            for h, count in remaining.items()
            if count == 0 and h not in poisoned
        ]

    def install_one(h: str) -> Optional[str]:
        nonlocal running
        node = nodes[h]
        with lock:
            running += 1
            plan.max_concurrency = max(plan.max_concurrency, running)
            occupancy = running
        # worker-occupancy histogram: how many workers were busy when
        # each node started (p50 near `jobs` means the pool is saturated)
        metrics.observe("install.worker_occupancy", occupancy)
        try:
            # the installer's node path is not thread-safe around the
            # database; serialize the DB check/update, run the build
            # (the slow part) outside the lock via the two-phase helper
            installer._install_node_locked(node, h in explicit, report, lock)
            return None
        except Exception as exc:  # noqa: BLE001 — reported, not raised
            return f"{type(exc).__name__}: {exc}"
        finally:
            with lock:
                running -= 1

    prefetcher: Optional[PayloadPrefetcher] = None
    if fetch_jobs > 1 and installer.caches:
        prefetcher = PayloadPrefetcher(installer, nodes, fetch_jobs)
        installer._prefetcher = prefetcher
    try:
        with trace.span(
            "install.parallel", jobs=jobs, nodes=len(nodes),
            fetch_jobs=fetch_jobs,
        ) as parallel_span:
            with ThreadPoolExecutor(max_workers=max(jobs, 1)) as pool:
                futures = {}
                submitted: Set[str] = set()

                def submit_ready() -> None:
                    for h in ready_nodes():
                        if h not in submitted:
                            submitted.add(h)
                            futures[pool.submit(install_one, h)] = h

                submit_ready()
                while futures:
                    done, _ = wait(futures, return_when=FIRST_COMPLETED)
                    for future in done:
                        h = futures.pop(future)
                        remaining.pop(h, None)
                        error = future.result()
                        node = nodes[h]
                        if error is None:
                            plan.installed.append(node.name)
                            for dep in dependents.get(h, ()):  # release dependents
                                if dep in remaining:
                                    remaining[dep] -= 1
                        else:
                            plan.failed[node.name] = error
                            logger.warning(
                                "install of %s failed: %s", node.name, error
                            )
                            _poison(h, dependents, poisoned)
                    submit_ready()
            parallel_span.set(
                installed=len(plan.installed),
                failed=len(plan.failed),
                max_concurrency=plan.max_concurrency,
            )
    finally:
        if prefetcher is not None:
            installer._prefetcher = None
            prefetcher.close()
    metrics.gauge("install.max_concurrency").max(plan.max_concurrency)
    metrics.inc("install.parallel_nodes", len(plan.installed))
    logger.info(
        "parallel install: %d node(s) with %d job(s), peak concurrency %d",
        len(plan.installed), jobs, plan.max_concurrency,
    )

    for h in poisoned:
        if h in nodes and nodes[h].name not in plan.failed:
            plan.skipped.append(nodes[h].name)
            remaining.pop(h, None)
    with lock:
        installer.database.save()
    return plan


def _poison(h: str, dependents: Dict[str, Set[str]], poisoned: Set[str]) -> None:
    stack = list(dependents.get(h, ()))
    while stack:
        current = stack.pop()
        if current in poisoned:
            continue
        poisoned.add(current)
        stack.extend(dependents.get(current, ()))
