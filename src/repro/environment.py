"""Environments: named collections of root specs with a lockfile.

The analogue of ``spack.yaml`` + ``spack.lock``: an environment declares
abstract roots and configuration (splicing on/off, forbidden packages);
``concretize()`` resolves all roots *jointly* (one consistent DAG, one
implementation per interface); the result persists as a lockfile so the
exact concrete specs — including splice provenance — can be reinstalled
bit-for-bit later or on another machine.

::

    env = Environment(path, repo)
    env.add("mfem")
    env.add("sundials +mpi")
    env.splicing = True
    env.concretize(reusable_specs=cache.all_specs())
    env.write()                      # manifest + lockfile
    ...
    again = Environment.read(path, repo)
    installer.install_all(again.concrete_roots)
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from .concretize import Concretizer
from .package.repository import Repository
from .spec import Spec, parse_one

__all__ = ["Environment", "EnvironmentError"]

MANIFEST_NAME = "repro.yaml.json"
LOCKFILE_NAME = "repro.lock.json"


class EnvironmentError(RuntimeError):
    """Raised for malformed environment directories or stale lockfiles."""


class Environment:
    """A directory-backed environment (manifest + lockfile)."""

    def __init__(self, path: Path, repo: Repository):
        self.path = Path(path)
        self.repo = repo
        #: abstract root requests, in insertion order
        self.roots: List[str] = []
        self.splicing: bool = False
        self.forbidden: List[str] = []
        self.default_os: str = "centos8"
        self.default_target: str = "skylake"
        #: concrete roots, parallel to ``roots`` after concretize()
        self.concrete_roots: List[Spec] = []

    # ------------------------------------------------------------------
    # manifest editing
    # ------------------------------------------------------------------
    def add(self, spec: str) -> None:
        """Add an abstract root request (idempotent)."""
        parse_one(spec)  # validate eagerly
        if spec not in self.roots:
            self.roots.append(spec)
            self.concrete_roots = []  # invalidate the lock

    def remove(self, spec: str) -> None:
        """Drop a root request (invalidates any lock)."""
        if spec in self.roots:
            self.roots.remove(spec)
            self.concrete_roots = []

    # ------------------------------------------------------------------
    # concretization
    # ------------------------------------------------------------------
    def concretize(
        self, reusable_specs: Sequence[Spec] = (), encoding: str = "new"
    ) -> List[Spec]:
        """Jointly concretize every root; returns the concrete roots."""
        if not self.roots:
            raise EnvironmentError("environment has no roots to concretize")
        concretizer = Concretizer(
            self.repo,
            reusable_specs=reusable_specs,
            encoding=encoding,
            splicing=self.splicing,
            default_os=self.default_os,
            default_target=self.default_target,
        )
        result = concretizer.solve_all(self.roots, forbidden=self.forbidden)
        self.concrete_roots = result.roots
        return self.concrete_roots

    @property
    def concretized(self) -> bool:
        """True when concrete roots are available (solved or locked)."""
        return bool(self.concrete_roots)

    def all_specs(self) -> List[Spec]:
        """Every distinct node across the environment's DAGs."""
        seen: Dict[str, Spec] = {}
        for root in self.concrete_roots:
            for node in root.traverse():
                seen.setdefault(node.dag_hash(), node)
        return [seen[h] for h in sorted(seen)]

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def write(self) -> None:
        """Write the manifest, and the lockfile when concretized."""
        self.path.mkdir(parents=True, exist_ok=True)
        manifest = {
            "roots": self.roots,
            "splicing": self.splicing,
            "forbidden": self.forbidden,
            "default_os": self.default_os,
            "default_target": self.default_target,
        }
        (self.path / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=1, sort_keys=True)
        )
        if self.concrete_roots:
            build_specs = {}
            for root in self.concrete_roots:
                for node in root.traverse():
                    if node.build_spec is not None:
                        bs = node.build_spec
                        build_specs[bs.dag_hash()] = bs.to_dict()
            lock = {
                "version": 1,
                "roots": [
                    {"request": request, "spec": spec.to_dict()}
                    for request, spec in zip(self.roots, self.concrete_roots)
                ],
                "build_specs": build_specs,
            }
            (self.path / LOCKFILE_NAME).write_text(
                json.dumps(lock, indent=1, sort_keys=True)
            )

    @classmethod
    def read(cls, path: Path, repo: Repository) -> "Environment":
        """Load an environment; restores the lock if still current."""
        path = Path(path)
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.exists():
            raise EnvironmentError(f"no environment at {path}")
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as e:
            raise EnvironmentError(f"corrupt manifest: {e}") from e
        env = cls(path, repo)
        env.roots = list(manifest.get("roots", []))
        env.splicing = manifest.get("splicing", False)
        env.forbidden = list(manifest.get("forbidden", []))
        env.default_os = manifest.get("default_os", "centos8")
        env.default_target = manifest.get("default_target", "skylake")

        lock_path = path / LOCKFILE_NAME
        if lock_path.exists():
            try:
                lock = json.loads(lock_path.read_text())
            except json.JSONDecodeError as e:
                raise EnvironmentError(f"corrupt lockfile: {e}") from e
            if lock.get("version") != 1:
                raise EnvironmentError("unsupported lockfile version")
            build_specs = {
                h: Spec.from_dict(doc)
                for h, doc in lock.get("build_specs", {}).items()
            }
            locked_requests = [entry["request"] for entry in lock["roots"]]
            if locked_requests == env.roots:
                env.concrete_roots = [
                    Spec.from_dict(entry["spec"], build_specs.get)
                    for entry in lock["roots"]
                ]
            # else: the manifest changed after locking → stale lock,
            # leave unconcretized so the caller re-concretizes
        return env

    def __repr__(self):
        state = "concretized" if self.concretized else "abstract"
        return f"<Environment {self.path.name}: {len(self.roots)} roots, {state}>"
