"""Directives: the declarative vocabulary of package definitions.

Directives are functions invoked in a package class body (Figure 1)::

    class Example(Package):
        version("1.1.0")
        variant("bzip", default=True)
        depends_on("bzip2", when="+bzip")
        depends_on("zlib@1.2", when="@1.0.0")
        provides("mpi")                      # for MPI implementations
        conflicts("%gcc@:4", when="@2:")
        can_splice("example@1.0.0", when="@1.1.0")

Each call records a declaration object on the enclosing class (collected
by :class:`~repro.package.package.DirectiveMeta`).  ``when`` arguments
are anonymous spec constraints evaluated against the package's own node
during concretization.

``can_splice`` is the paper's addition (Section 5.2): the *replacing*
package declares which built configurations (the ``target``) it can
stand in for, guarded by constraints on itself (the ``when`` spec).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Union

from ..spec import (
    Spec,
    Version,
    parse_one,
    DEPTYPE_BUILD,
    DEPTYPE_LINK_RUN,
)

__all__ = [
    "VersionDecl",
    "VariantDecl",
    "DependencyDecl",
    "ProvidesDecl",
    "ConflictDecl",
    "RequiresDecl",
    "CanSpliceDecl",
    "DirectiveError",
    "version",
    "variant",
    "depends_on",
    "provides",
    "conflicts",
    "requires",
    "can_splice",
    "maintainers",
    "license",
]


class DirectiveError(ValueError):
    """Raised for malformed directive arguments."""


#: module-level accumulator the metaclass drains when a class is created
_COLLECTED: list = []


def _collect(decl) -> None:
    _COLLECTED.append(decl)


def _drain() -> list:
    global _COLLECTED
    collected, _COLLECTED = _COLLECTED, []
    return collected


def _when_spec(when: Optional[Union[str, Spec]]) -> Optional[Spec]:
    if when is None:
        return None
    if isinstance(when, Spec):
        return when
    return parse_one(when)


def _target_spec(spec: Union[str, Spec]) -> Spec:
    if isinstance(spec, Spec):
        return spec
    return parse_one(spec)


# ---------------------------------------------------------------------------
# declaration records
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class VersionDecl:
    version: Version
    when: Optional[Spec] = None
    preferred: bool = False
    deprecated: bool = False


@dataclass(frozen=True)
class VariantDecl:
    name: str
    default: Union[str, bool]
    values: Optional[Tuple[str, ...]] = None
    description: str = ""
    when: Optional[Spec] = None

    @property
    def is_bool(self) -> bool:
        return isinstance(self.default, bool)

    def allowed_values(self) -> Tuple[str, ...]:
        if self.is_bool:
            return ("True", "False")
        if self.values is None:
            return (str(self.default),)
        return tuple(str(v) for v in self.values)


@dataclass(frozen=True)
class DependencyDecl:
    spec: Spec
    when: Optional[Spec] = None
    deptypes: Tuple[str, ...] = (DEPTYPE_LINK_RUN,)


@dataclass(frozen=True)
class ProvidesDecl:
    virtual: Spec
    when: Optional[Spec] = None


@dataclass(frozen=True)
class ConflictDecl:
    spec: Spec
    when: Optional[Spec] = None
    msg: str = ""


@dataclass(frozen=True)
class RequiresDecl:
    spec: Spec
    when: Optional[Spec] = None


@dataclass(frozen=True)
class CanSpliceDecl:
    """ABI-compatibility declaration: this package, when matching
    ``when``, can replace built configurations matching ``target``."""

    target: Spec
    when: Optional[Spec] = None


# ---------------------------------------------------------------------------
# the directive functions
# ---------------------------------------------------------------------------
def version(
    ver: Union[str, int, float],
    when: Optional[Union[str, Spec]] = None,
    preferred: bool = False,
    deprecated: bool = False,
) -> None:
    """Declare an installable version of the package."""
    _collect(
        VersionDecl(Version(ver), _when_spec(when), preferred, deprecated)
    )


def variant(
    name: str,
    default: Union[str, bool] = False,
    values: Optional[Sequence[str]] = None,
    description: str = "",
    when: Optional[Union[str, Spec]] = None,
) -> None:
    """Declare a compile-time option.

    A bool ``default`` makes a boolean variant (``+name``/``~name``); a
    string default with ``values`` makes a multi-valued variant
    (``name=value``).
    """
    if not isinstance(default, bool) and values is not None:
        if str(default) not in {str(v) for v in values}:
            raise DirectiveError(
                f"variant {name!r}: default {default!r} not among values {values!r}"
            )
    _collect(
        VariantDecl(
            name,
            default,
            tuple(str(v) for v in values) if values is not None else None,
            description,
            _when_spec(when),
        )
    )


def depends_on(
    spec: Union[str, Spec],
    when: Optional[Union[str, Spec]] = None,
    type: Union[str, Sequence[str]] = DEPTYPE_LINK_RUN,
) -> None:
    """Declare a dependency on (a constrained configuration of) another
    package or virtual."""
    if isinstance(type, str):
        deptypes: Tuple[str, ...] = (type,)
    else:
        deptypes = tuple(type)
    for dt in deptypes:
        if dt not in (DEPTYPE_BUILD, DEPTYPE_LINK_RUN):
            raise DirectiveError(f"unknown dependency type {dt!r}")
    _collect(DependencyDecl(_target_spec(spec), _when_spec(when), deptypes))


def provides(virtual: Union[str, Spec], when: Optional[Union[str, Spec]] = None) -> None:
    """Declare that this package implements a virtual interface (e.g.
    ``provides("mpi")`` on mpich)."""
    _collect(ProvidesDecl(_target_spec(virtual), _when_spec(when)))


def conflicts(
    spec: Union[str, Spec],
    when: Optional[Union[str, Spec]] = None,
    msg: str = "",
) -> None:
    """Declare that configurations matching ``spec`` are invalid when the
    package matches ``when``."""
    _collect(ConflictDecl(_target_spec(spec), _when_spec(when), msg))


def requires(spec: Union[str, Spec], when: Optional[Union[str, Spec]] = None) -> None:
    """Declare that the package requires its own node to match ``spec``."""
    _collect(RequiresDecl(_target_spec(spec), _when_spec(when)))


def can_splice(
    target: Union[str, Spec],
    when: Optional[Union[str, Spec]] = None,
) -> None:
    """Declare ABI-compatibility (the paper's new directive).

    ``target`` constrains the built spec this package can replace;
    ``when`` constrains this package for the splice to be valid.  Both
    support full spec syntax, and the two packages need not share a name.
    """
    _collect(CanSpliceDecl(_target_spec(target), _when_spec(when)))


def maintainers(*names: str) -> None:
    """Metadata-only directive (kept for DSL fidelity)."""
    return None


def license(name: str) -> None:
    """Metadata-only directive (kept for DSL fidelity)."""
    return None
