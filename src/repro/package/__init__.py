"""Packaging DSL: directives, the Package base class, and repositories."""

from .directives import (
    version,
    variant,
    depends_on,
    provides,
    conflicts,
    requires,
    can_splice,
    maintainers,
    license,
    VersionDecl,
    VariantDecl,
    DependencyDecl,
    ProvidesDecl,
    ConflictDecl,
    RequiresDecl,
    CanSpliceDecl,
    DirectiveError,
)
from .package import PackageBase, Package, DirectiveMeta, name_from_class
from .repository import Repository, RepositoryError
from .repo_dir import load_repository, dump_repository, RepoLayoutError

__all__ = [
    "version",
    "variant",
    "depends_on",
    "provides",
    "conflicts",
    "requires",
    "can_splice",
    "maintainers",
    "license",
    "VersionDecl",
    "VariantDecl",
    "DependencyDecl",
    "ProvidesDecl",
    "ConflictDecl",
    "RequiresDecl",
    "CanSpliceDecl",
    "DirectiveError",
    "PackageBase",
    "Package",
    "DirectiveMeta",
    "name_from_class",
    "Repository",
    "RepositoryError",
    "load_repository",
    "dump_repository",
    "RepoLayoutError",
]
