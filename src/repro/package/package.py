"""Package base class and the directive-collecting metaclass.

A package is a Python class whose body consists of directive calls
(Figure 1).  :class:`DirectiveMeta` drains the module-level accumulator
in :mod:`.directives` when the class object is created, attaching typed
declaration lists (``versions``, ``variants``, ``dependencies``, ...)
to the class.  Subclasses inherit and extend their parents'
declarations.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..spec import Spec, Version
from .directives import (
    CanSpliceDecl,
    ConflictDecl,
    DependencyDecl,
    DirectiveError,
    ProvidesDecl,
    RequiresDecl,
    VariantDecl,
    VersionDecl,
    _drain,
)

__all__ = ["PackageBase", "Package", "DirectiveMeta", "name_from_class"]


def name_from_class(class_name: str) -> str:
    """CamelCase class name → kebab-case package name (Spack convention):
    ``PyShroud`` → ``py-shroud``, ``Hdf5`` → ``hdf5``."""
    parts = re.findall(r"[A-Z][a-z0-9]*|[0-9]+", class_name)
    return "-".join(p.lower() for p in parts)


class DirectiveMeta(type):
    """Collects directive declarations issued in the class body."""

    def __new__(mcs, name, bases, attrs):
        cls = super().__new__(mcs, name, bases, attrs)
        collected = _drain()

        def inherited(attr: str) -> list:
            merged: List = []
            for base in bases:
                merged.extend(getattr(base, attr, ()))
            return merged

        cls.version_decls = inherited("version_decls") + [
            d for d in collected if isinstance(d, VersionDecl)
        ]
        cls.variant_decls = inherited("variant_decls") + [
            d for d in collected if isinstance(d, VariantDecl)
        ]
        cls.dependency_decls = inherited("dependency_decls") + [
            d for d in collected if isinstance(d, DependencyDecl)
        ]
        cls.provides_decls = inherited("provides_decls") + [
            d for d in collected if isinstance(d, ProvidesDecl)
        ]
        cls.conflict_decls = inherited("conflict_decls") + [
            d for d in collected if isinstance(d, ConflictDecl)
        ]
        cls.requires_decls = inherited("requires_decls") + [
            d for d in collected if isinstance(d, RequiresDecl)
        ]
        cls.can_splice_decls = inherited("can_splice_decls") + [
            d for d in collected if isinstance(d, CanSpliceDecl)
        ]
        if "name" not in attrs and name not in ("PackageBase", "Package"):
            cls.name = name_from_class(name)
        return cls


class PackageBase(metaclass=DirectiveMeta):
    """Base class of all packages.

    Class attributes set by the metaclass: ``version_decls``,
    ``variant_decls``, ``dependency_decls``, ``provides_decls``,
    ``conflict_decls``, ``requires_decls``, ``can_splice_decls``.

    Set ``buildable = False`` for packages that only exist as external
    binaries (e.g. vendor MPI implementations such as cray-mpich).
    """

    #: package name (kebab-case); derived from the class name by default
    name: str = ""
    #: can this package be built from source?
    buildable: bool = True
    #: simulated build artifacts: exported symbols per library
    provides_symbols: Tuple[str, ...] = ()
    #: simulated exported type layouts: {type_name: layout descriptor}
    type_layouts: Dict[str, str] = {}
    #: simulated build duration (seconds) for installer accounting
    build_time: float = 1.0

    # ------------------------------------------------------------------
    # declaration queries (used by the concretizer encoder)
    # ------------------------------------------------------------------
    @classmethod
    def declared_versions(cls) -> List[Version]:
        """Declared versions, newest first."""
        return sorted((d.version for d in cls.version_decls), reverse=True)

    @classmethod
    def preferred_version(cls) -> Version:
        preferred = [d.version for d in cls.version_decls if d.preferred]
        if preferred:
            return max(preferred)
        usable = [d.version for d in cls.version_decls if not d.deprecated]
        if not usable:
            raise DirectiveError(f"package {cls.name} declares no usable versions")
        return max(usable)

    @classmethod
    def variant_names(cls) -> List[str]:
        return sorted({d.name for d in cls.variant_decls})

    @classmethod
    def variant(cls, name: str) -> VariantDecl:
        for d in cls.variant_decls:
            if d.name == name:
                return d
        raise KeyError(name)

    @classmethod
    def provided_virtuals(cls) -> List[str]:
        return sorted({d.virtual.name for d in cls.provides_decls})

    @classmethod
    def dependency_names(cls) -> List[str]:
        return sorted({d.spec.name for d in cls.dependency_decls})

    # ------------------------------------------------------------------
    # simulated build description (consumed by repro.installer.builder)
    # ------------------------------------------------------------------
    @classmethod
    def libraries(cls) -> List[str]:
        """Names of the shared libraries a build of this package yields."""
        return [f"lib{cls.name}.so"]

    @classmethod
    def binaries(cls) -> List[str]:
        """Names of executables a build of this package yields."""
        return []

    @classmethod
    def exported_symbols(cls, spec: Spec) -> List[str]:
        """Mangled symbol names this configuration exports (ABI model).

        Default: one symbol per declared symbol plus a versioned marker.
        Packages can override to model symbol changes across versions.
        """
        base = list(cls.provides_symbols) or [f"{cls.name}_init", f"{cls.name}_run"]
        return base

    @classmethod
    def exported_type_layouts(cls, spec: Spec) -> Dict[str, str]:
        """Opaque-type layout descriptors (ABI model, Section 2.1)."""
        return dict(cls.type_layouts)

    def __init__(self, spec: Optional[Spec] = None):
        #: the concrete spec this instance describes, when instantiated
        self.spec = spec

    def __repr__(self):
        return f"<Package {self.name}>"


#: alias matching Spack's DSL (``class Example(Package)``)
Package = PackageBase
