"""Directory-backed package repositories: ``package.py`` files on disk.

Real Spack repositories are directories of ``<name>/package.py`` files
executed in a namespace where the directives are in scope.  This module
loads the same layout::

    my-repo/
      repo.json                 {"name": "my-repo", "preferences": {...}}
      zlib/package.py           class Zlib(Package): version("1.3") ...
      hdf5/package.py

and also writes one back out (``dump_repository``), which the tests use
to round-trip the built-in repos through the on-disk format.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Type

from ..spec import Spec
from . import directives
from .package import Package, PackageBase
from .repository import Repository, RepositoryError

__all__ = ["load_repository", "dump_repository", "RepoLayoutError"]

REPO_CONFIG = "repo.json"


class RepoLayoutError(RepositoryError):
    """Raised for malformed on-disk repositories."""


def _directive_namespace() -> dict:
    """The execution namespace for a package.py: Package + directives."""
    names = [
        "version", "variant", "depends_on", "provides", "conflicts",
        "requires", "can_splice", "maintainers", "license",
    ]
    namespace = {"Package": Package, "PackageBase": PackageBase}
    for name in names:
        namespace[name] = getattr(directives, name)
    return namespace


def load_repository(path: Path) -> Repository:
    """Load a directory of ``<name>/package.py`` files into a Repository.

    Each package.py must define exactly one Package subclass whose
    derived (or explicit) name matches its directory.  ``repo.json`` is
    optional and may set the repo name and provider preferences.
    """
    path = Path(path)
    if not path.is_dir():
        raise RepoLayoutError(f"not a repository directory: {path}")

    name = path.name
    preferences: Dict[str, list] = {}
    config_path = path / REPO_CONFIG
    if config_path.exists():
        try:
            config = json.loads(config_path.read_text())
        except json.JSONDecodeError as e:
            raise RepoLayoutError(f"corrupt {REPO_CONFIG}: {e}") from e
        name = config.get("name", name)
        preferences = config.get("preferences", {})

    repo = Repository(name)
    for package_file in sorted(path.glob("*/package.py")):
        directory = package_file.parent.name
        namespace = _directive_namespace()
        source = package_file.read_text()
        try:
            exec(compile(source, str(package_file), "exec"), namespace)
        except directives.DirectiveError:
            raise
        except SyntaxError as e:
            raise RepoLayoutError(f"{package_file}: {e}") from e
        classes = [
            obj
            for obj in namespace.values()
            if isinstance(obj, type)
            and issubclass(obj, PackageBase)
            and obj not in (Package, PackageBase)
        ]
        if len(classes) != 1:
            raise RepoLayoutError(
                f"{package_file}: expected exactly one Package subclass, "
                f"found {len(classes)}"
            )
        pkg_cls = classes[0]
        if pkg_cls.name != directory:
            raise RepoLayoutError(
                f"{package_file}: package {pkg_cls.name!r} does not match "
                f"its directory {directory!r}"
            )
        repo.add(pkg_cls)
    repo.provider_preferences.update(preferences)
    return repo


def dump_repository(repo: Repository, path: Path) -> Path:
    """Write a Repository out as ``<name>/package.py`` files.

    Directive calls are regenerated from the collected declarations —
    the output is loadable by :func:`load_repository` and diffs cleanly.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    (path / REPO_CONFIG).write_text(
        json.dumps(
            {"name": repo.name, "preferences": repo.provider_preferences},
            indent=1,
            sort_keys=True,
        )
    )
    for pkg_cls in repo:
        package_dir = path / pkg_cls.name
        package_dir.mkdir(exist_ok=True)
        (package_dir / "package.py").write_text(_render_package(pkg_cls))
    return path


def _class_name(package_name: str) -> str:
    return "".join(part.capitalize() for part in package_name.split("-"))


def _spec_arg(spec: Optional[Spec]) -> str:
    return f'"{spec.format(deps=True)}"' if spec is not None else "None"


def _render_package(pkg_cls: Type[PackageBase]) -> str:
    lines = [f"class {_class_name(pkg_cls.name)}(Package):"]
    doc = (pkg_cls.__doc__ or "").strip()
    if doc:
        first_line = doc.splitlines()[0]
        lines.append(f'    """{first_line}"""')
        lines.append("")
    if pkg_cls.name != _kebab(pkg_cls.name, pkg_cls):
        lines.append(f'    name = "{pkg_cls.name}"')
    for decl in pkg_cls.version_decls:
        extra = ", preferred=True" if decl.preferred else ""
        extra += ", deprecated=True" if decl.deprecated else ""
        when = f', when="{decl.when}"' if decl.when is not None else ""
        lines.append(f'    version("{decl.version}"{when}{extra})')
    for decl in pkg_cls.variant_decls:
        if decl.is_bool:
            default = "True" if decl.default else "False"
            lines.append(f'    variant("{decl.name}", default={default})')
        else:
            values = ", ".join(f'"{v}"' for v in decl.allowed_values())
            lines.append(
                f'    variant("{decl.name}", default="{decl.default}", '
                f"values=({values},))"
            )
    for decl in pkg_cls.dependency_decls:
        when = f', when="{decl.when}"' if decl.when is not None else ""
        deptype = (
            f', type="{decl.deptypes[0]}"'
            if decl.deptypes != ("link-run",)
            else ""
        )
        lines.append(
            f'    depends_on("{decl.spec.format(deps=True)}"{when}{deptype})'
        )
    for decl in pkg_cls.provides_decls:
        when = f', when="{decl.when}"' if decl.when is not None else ""
        lines.append(f'    provides("{decl.virtual.format(deps=False)}"{when})')
    for decl in pkg_cls.conflict_decls:
        when = f', when="{decl.when}"' if decl.when is not None else ""
        msg = f', msg="{decl.msg}"' if decl.msg else ""
        lines.append(
            f'    conflicts("{decl.spec.format(deps=True)}"{when}{msg})'
        )
    for decl in pkg_cls.requires_decls:
        when = f', when="{decl.when}"' if decl.when is not None else ""
        lines.append(f'    requires("{decl.spec.format(deps=True)}"{when})')
    for decl in pkg_cls.can_splice_decls:
        when = f', when="{decl.when}"' if decl.when is not None else ""
        lines.append(
            f'    can_splice("{decl.target.format(deps=True)}"{when})'
        )
    if not pkg_cls.buildable:
        lines.append("    buildable = False")
    if pkg_cls.build_time != PackageBase.build_time:
        lines.append(f"    build_time = {pkg_cls.build_time}")
    if pkg_cls.provides_symbols:
        symbols = ", ".join(f'"{s}"' for s in pkg_cls.provides_symbols)
        lines.append(f"    provides_symbols = ({symbols},)")
    if pkg_cls.type_layouts:
        layouts = ", ".join(
            f'"{k}": "{v}"' for k, v in sorted(pkg_cls.type_layouts.items())
        )
        lines.append(f"    type_layouts = {{{layouts}}}")
    if len(lines) == 1:
        lines.append("    pass")
    return "\n".join(lines) + "\n"


def _kebab(name: str, pkg_cls) -> str:
    from .package import name_from_class

    return name_from_class(_class_name(name))
