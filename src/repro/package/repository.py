"""Package repository: name → package class, plus the virtual-provider
index the concretizer uses to resolve interfaces like ``mpi``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Type

from ..spec import Spec
from .package import PackageBase

__all__ = ["Repository", "RepositoryError"]


class RepositoryError(KeyError):
    """Raised for unknown packages or duplicate registrations."""


class Repository:
    """A collection of package classes with virtual-provider indexing."""

    def __init__(self, name: str = "builtin"):
        self.name = name
        self._packages: Dict[str, Type[PackageBase]] = {}
        self._providers: Dict[str, List[str]] = {}
        #: preferred provider order per virtual (earlier = preferred);
        #: providers not listed sort after listed ones, alphabetically
        self.provider_preferences: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    def add(self, pkg_cls: Type[PackageBase]) -> Type[PackageBase]:
        """Register a package class (usable as a class decorator)."""
        name = pkg_cls.name
        if not name:
            raise RepositoryError("package class has no name")
        if name in self._packages:
            raise RepositoryError(f"duplicate package {name!r}")
        self._packages[name] = pkg_cls
        for decl in pkg_cls.provides_decls:
            # an anonymous provides spec has no name to index under; the
            # audit lints (VIR001) report it rather than poisoning the index
            if decl.virtual.name:
                self._providers.setdefault(decl.virtual.name, []).append(name)
        return pkg_cls

    def extend(self, other: "Repository") -> None:
        for pkg_cls in other:
            self.add(pkg_cls)

    # ------------------------------------------------------------------
    def get(self, name: str) -> Type[PackageBase]:
        try:
            return self._packages[name]
        except KeyError:
            raise RepositoryError(f"unknown package {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._packages

    def __iter__(self) -> Iterator[Type[PackageBase]]:
        return iter(self._packages.values())

    def __len__(self) -> int:
        return len(self._packages)

    def names(self) -> List[str]:
        return sorted(self._packages)

    # ------------------------------------------------------------------
    # virtuals
    # ------------------------------------------------------------------
    def is_virtual(self, name: str) -> bool:
        """A name is virtual if some package provides it and none *is* it."""
        return name in self._providers and name not in self._packages

    def providers(self, virtual: str) -> List[str]:
        """Provider package names, preferred first, then alphabetical."""
        preferences = self.provider_preferences.get(virtual, [])

        def key(name: str):
            try:
                return (0, preferences.index(name))
            except ValueError:
                return (1, name)

        return sorted(self._providers.get(virtual, []), key=key)

    def provider_weight(self, virtual: str, provider: str) -> int:
        """Solver preference weight: listed providers rank by position;
        all unlisted providers share one flat weight (like Spack's
        packages.yaml defaults) so the solver is free among them."""
        preferences = self.provider_preferences.get(virtual, [])
        try:
            return preferences.index(provider)
        except ValueError:
            return len(preferences)

    def virtual_names(self) -> List[str]:
        return sorted(v for v in self._providers if v not in self._packages)

    # ------------------------------------------------------------------
    def copy(self) -> "Repository":
        new = Repository(self.name)
        for pkg_cls in self:
            new.add(pkg_cls)
        return new

    def __repr__(self):
        return f"<Repository {self.name!r}: {len(self)} packages>"
