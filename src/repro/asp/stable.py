"""Stable-model search: supported models + lazy loop formulas (ASSAT).

The completion CNF admits every *supported* model; supported models can
still contain positively-circular justifications ("unfounded sets").
Following Lin & Zhao's ASSAT method, we:

1. find a supported model with the CDCL core;
2. compute the least fixpoint of the model's reduct — atoms derivable
   from facts through rules whose negative body the model satisfies
   (choice atoms count as self-derivable when some choice rule licenses
   them);
3. if every true atom is derived, the model is stable — done;
4. otherwise the underived true atoms form an unfounded set ``U``: add,
   for each ``a ∈ U``, the loop formula ``a → ∨ external supports of U``
   (supports whose positive atoms avoid ``U``), and re-solve.

Dependency DAGs are acyclic in practice, so the concretizer almost never
triggers step 4 — but correctness does not rely on that.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .ground import GroundProgram
from .syntax import Atom
from .translate import Translator

__all__ = ["StableModelFinder"]


class StableModelFinder:
    """Finds stable models of a ground program, lazily adding loop
    formulas on top of a shared :class:`Translator`."""

    def __init__(self, translator: Translator):
        self.translator = translator
        self.program: GroundProgram = translator.program
        self.loop_formulas_added = 0
        # Index rules/choices by head atom for fast reduct computation.
        self._rules_by_head: Dict[Atom, List] = defaultdict(list)
        for rule in self.program.rules:
            if rule.head is not None:
                self._rules_by_head[rule.head].append(rule)
        self._choices_by_atom: Dict[Atom, List[Tuple]] = defaultdict(list)
        for choice in self.program.choices:
            for element in choice.elements:
                self._choices_by_atom[element.atom].append((choice, element))

    # ------------------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = ()) -> Optional[Set[Atom]]:
        """Return a stable model (set of true atoms) or None if UNSAT."""
        solver = self.translator.solver
        while True:
            if not solver.solve(assumptions):
                return None
            model = self.translator.decode_model()
            unfounded = self._unfounded_set(model)
            if not unfounded:
                return model
            self._add_loop_formulas(unfounded, model)

    # ------------------------------------------------------------------
    def _unfounded_set(self, model: Set[Atom]) -> Set[Atom]:
        """True atoms not derivable in the reduct's least fixpoint."""
        derived: Set[Atom] = set()
        # Worklist over candidate atoms; a candidate derives when one of
        # its rules fires w.r.t. the current derived set and the model.
        changed = True
        pending = set(model)
        while changed:
            changed = False
            newly: List[Atom] = []
            for atom in pending:
                if self._derivable(atom, derived, model):
                    newly.append(atom)
            for atom in newly:
                derived.add(atom)
                pending.discard(atom)
                changed = True
        return set(model) - derived

    def _derivable(self, atom: Atom, derived: Set[Atom], model: Set[Atom]) -> bool:
        for rule in self._rules_by_head.get(atom, ()):  # normal rules
            if all(p in derived for p in rule.pos) and not any(
                n in model for n in rule.neg
            ):
                return True
        for choice, element in self._choices_by_atom.get(atom, ()):
            if (
                all(p in derived for p in choice.pos)
                and not any(n in model for n in choice.neg)
                and all(p in derived for p in element.cond_pos)
                and not any(n in model for n in element.cond_neg)
            ):
                return True
        return False

    # ------------------------------------------------------------------
    def _add_loop_formulas(self, unfounded: Set[Atom], model: Set[Atom]) -> None:
        # Lin–Zhao: if any atom of an unfounded set is true, some
        # *external* support of the set (a support whose positive atoms
        # all lie outside the set) must be active.  The whole unfounded
        # set may union several independent loops — split it into
        # positively-connected components first so each gets a targeted
        # (and much stronger) formula, converging in fewer repairs.
        solver = self.translator.solver
        for component in self._components(unfounded):
            externals = [
                support.var
                for atom in component
                for support in self.translator.supports.get(atom, ())
                if not (support.pos_atoms & component)
            ]
            for atom in component:
                var = self.translator.atom_var[atom]
                solver.add_clause([-var] + externals)
                self.loop_formulas_added += 1

    def _components(self, unfounded: Set[Atom]) -> List[Set[Atom]]:
        """Connected components of the positive support graph within the
        unfounded set (union-find)."""
        parent: Dict[Atom, Atom] = {a: a for a in unfounded}

        def find(a: Atom) -> Atom:
            while parent[a] is not a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        def union(a: Atom, b: Atom) -> None:
            ra, rb = find(a), find(b)
            if ra is not rb:
                parent[ra] = rb

        for atom in unfounded:
            for support in self.translator.supports.get(atom, ()):
                for dep in support.pos_atoms & unfounded:
                    union(atom, dep)
        groups: Dict[Atom, Set[Atom]] = {}
        for atom in unfounded:
            groups.setdefault(find(atom), set()).add(atom)
        return list(groups.values())
