"""Bottom-up grounder: instantiate rule variables over derivable atoms.

Two-phase algorithm:

1. **Possible-atom fixpoint** (semi-naive): compute the superset of atoms
   that could be derived by any rule, ignoring negative literals (they
   can only *block* derivation) and treating choice heads as derivable.
2. **Instantiation**: re-join every rule's positive body over the final
   possible-atom set, evaluating builtin comparisons on the way.
   Negative literals whose atom is *impossible* are certainly true and
   dropped; the rest stay in the ground rule for the solver to decide.

Join order is chosen greedily per binding step: evaluable comparisons
first, then the positive literal with the most bound arguments (using a
per-(signature, position, value) index to keep candidate lists short).
This keeps grounding near-linear for the concretizer's rule shapes.

**Monotone mode** (``Grounder(program, monotone=True)``) supports
incremental re-grounding: :meth:`prepare` runs the possible-atom
fixpoint once over the *base* program, and :meth:`ground_with` then
produces a ground program for base + per-solve *volatile* facts (and
head-less volatile rules) by resuming the fixpoint from just the new
atoms and re-running only the instantiation phase.  Soundness rests on
three facts:

* the possible-atom index only ever *grows*, so it over-approximates
  the possible set of any base+volatile program seen so far; extra rule
  instances mention atoms with no support, which the translator's
  completion forces false (stale atoms are inert, including choice
  elements conditioned on since-removed facts);
* negative literals are only dropped when their atom was never possible
  in *any* solve — a superset check, still sound;
* certainty is restricted to what the base program alone derives
  (volatile facts are possible but never certain, and the
  negation-based :meth:`_certain_fixpoint` — which is only valid
  against a *final* possible set — is skipped entirely).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .ground import (
    GroundChoice,
    GroundChoiceElement,
    GroundMinimize,
    GroundProgram,
    GroundRule,
)
from .syntax import (
    Atom,
    BodyElement,
    ChoiceHead,
    Comparison,
    Function,
    Integer,
    Literal,
    Program,
    Rule,
    Term,
    Variable,
)

__all__ = ["Grounder", "GroundingError", "ground"]


class GroundingError(ValueError):
    """Raised for unsafe rules (head/negative/comparison variables not
    bound by the positive body)."""


Signature = Tuple[str, int]


def _match_term(pattern: Term, value: Term, binding: dict) -> bool:
    """Unify ``pattern`` (may contain variables) against ground ``value``.

    Extends ``binding`` in place; returns False (binding possibly
    partially extended — caller must copy) on mismatch.
    """
    if isinstance(pattern, Variable):
        bound = binding.get(pattern.name)
        if bound is None:
            binding[pattern.name] = value
            return True
        return bound == value
    if isinstance(pattern, Function):
        if (
            not isinstance(value, Function)
            or pattern.name != value.name
            or len(pattern.args) != len(value.args)
        ):
            return False
        return all(
            _match_term(p, v, binding) for p, v in zip(pattern.args, value.args)
        )
    return pattern == value


def match_atom(pattern: Atom, value: Atom, binding: dict) -> Optional[dict]:
    """Match a pattern atom against a ground atom; return the extended
    binding or None."""
    if pattern.predicate != value.predicate or len(pattern.args) != len(value.args):
        return None
    new = dict(binding)
    for p, v in zip(pattern.args, value.args):
        if not _match_term(p, v, new):
            return None
    return new


class AtomIndex:
    """Ground atoms indexed by signature and by (signature, argpos, value)."""

    def __init__(self):
        self.by_sig: Dict[Signature, List[Atom]] = defaultdict(list)
        self.by_arg: Dict[Tuple[Signature, int, Term], List[Atom]] = defaultdict(list)
        self.all: Set[Atom] = set()

    def add(self, atom: Atom) -> bool:
        if atom in self.all:
            return False
        self.all.add(atom)
        sig = atom.signature
        self.by_sig[sig].append(atom)
        for i, arg in enumerate(atom.args):
            self.by_arg[(sig, i, arg)].append(atom)
        return True

    def __contains__(self, atom: Atom) -> bool:
        return atom in self.all

    def candidates(self, pattern: Atom, binding: dict) -> List[Atom]:
        """The shortest candidate list for a partially-bound pattern."""
        sig = pattern.signature
        best = self.by_sig.get(sig, [])
        for i, arg in enumerate(pattern.args):
            ground_arg = arg.substitute(binding) if not arg.is_ground else arg
            if ground_arg.is_ground:
                bucket = self.by_arg.get((sig, i, ground_arg), [])
                if len(bucket) < len(best):
                    best = bucket
        return best


def _bound_vars(term_or_atom, binding: dict) -> bool:
    return all(v in binding for v in term_or_atom.variables())


class _Joiner:
    """Instantiates a body (positive literals + comparisons) over an index."""

    def __init__(self, index: AtomIndex):
        self.index = index

    def join(
        self,
        elements: Sequence[BodyElement],
        binding: dict,
    ) -> Iterator[dict]:
        """Yield every binding extending ``binding`` that satisfies all
        positive literals and comparisons.  Negative literals are skipped
        here (handled by the caller after full instantiation)."""
        pending: List[BodyElement] = [
            e
            for e in elements
            if isinstance(e, Comparison) or (isinstance(e, Literal) and e.positive)
        ]
        yield from self._join_rec(pending, binding)

    def _join_rec(self, pending: List[BodyElement], binding: dict) -> Iterator[dict]:
        if not pending:
            yield binding
            return
        # Pick the next element: any evaluable comparison (including
        # ``X = expr`` assignments once the expression side is bound),
        # else the positive literal with the fewest candidates.
        chosen_idx = None
        assignment = None
        for i, e in enumerate(pending):
            if isinstance(e, Comparison):
                if _bound_vars(e, binding):
                    chosen_idx = i
                    break
                if e.op == "=" and assignment is None:
                    bound = self._assignment(e, binding)
                    if bound is not None:
                        assignment = (i, bound)
        if chosen_idx is None and assignment is not None:
            i, (var_name, value) = assignment
            new = dict(binding)
            new[var_name] = value
            rest = pending[:i] + pending[i + 1 :]
            yield from self._join_rec(rest, new)
            return
        if chosen_idx is None:
            best_size = None
            for i, e in enumerate(pending):
                if isinstance(e, Literal):
                    size = len(self.index.candidates(e.atom, binding))
                    if best_size is None or size < best_size:
                        best_size, chosen_idx = size, i
            if chosen_idx is None:
                # Only unevaluable comparisons remain → unsafe rule.
                raise GroundingError(
                    f"comparison over unbound variables: {pending!r}"
                )
        element = pending[chosen_idx]
        rest = pending[:chosen_idx] + pending[chosen_idx + 1 :]
        if isinstance(element, Comparison):
            if element.substitute(binding).evaluate():
                yield from self._join_rec(rest, binding)
            return
        for candidate in self.index.candidates(element.atom, binding):
            new = match_atom(element.atom, candidate, binding)
            if new is not None:
                yield from self._join_rec(rest, new)

    @staticmethod
    def _assignment(comparison: Comparison, binding: dict):
        """``X = expr`` (or ``expr = X``) with X unbound and expr ground
        binds X; returns (var_name, value) or None."""
        left = comparison.left.substitute(binding)
        right = comparison.right.substitute(binding)
        if isinstance(left, Variable) and right.is_ground:
            return (left.name, right)
        if isinstance(right, Variable) and left.is_ground:
            return (right.name, left)
        return None


class Grounder:
    """Grounds a :class:`Program` into a :class:`GroundProgram`.

    With ``monotone=True`` the grounder keeps enough state to be
    *extended* with volatile facts after the initial fixpoint (see the
    module docstring for the soundness argument); the classic
    single-shot path is unchanged.
    """

    def __init__(self, program: Program, monotone: bool = False):
        self.program = program
        self.monotone = monotone
        self.index = AtomIndex()
        self.joiner = _Joiner(self.index)
        #: atoms that hold in EVERY stable model (deterministic closure);
        #: rules deriving them are projected to plain facts, mirroring
        #: the simplification clingo's grounder performs
        self.certain: Set[Atom] = set()
        self._certain_sig_count: Dict[Signature, int] = defaultdict(int)
        self._prepared = False
        #: phase-1 seed map, kept as an attribute so :meth:`add_facts`
        #: can resume the fixpoint after :meth:`prepare`
        self._by_sig: Dict[Signature, List[Tuple[Rule, object]]] = defaultdict(list)
        self._negfree: Dict[int, bool] = {}

    def _mark_certain(self, atom: Atom) -> bool:
        if atom in self.certain:
            return False
        self.certain.add(atom)
        self._certain_sig_count[atom.signature] += 1
        return True

    # ------------------------------------------------------------------
    # phase 1: possible atoms
    # ------------------------------------------------------------------
    def _derive(self, rule: Rule, binding: dict, delta: List[Atom]) -> None:
        """Record the head atoms of a fired instance; negation-free
        normal rules whose positive body is fully *certain* make the
        head certain too (fused deterministic closure)."""
        if isinstance(rule.head, Atom):
            head = rule.head.substitute(binding)
            if not head.is_ground:
                raise GroundingError(f"unsafe head variables in {rule!r}")
            newly_possible = self.index.add(head)
            newly_certain = False
            if self._negfree.get(id(rule), False) and head not in self.certain:
                if all(
                    e.atom.substitute(binding) in self.certain
                    for e in rule.body
                    if isinstance(e, Literal)
                ):
                    self._mark_certain(head)
                    newly_certain = True
            if newly_possible or newly_certain:
                # re-enqueue on new *certainty* too: dependents must get
                # a chance to become certain themselves (firing is
                # idempotent, certainty is monotone — this terminates)
                delta.append(head)
            return
        for element in rule.head.elements:
            for cond_binding in self.joiner.join(element.condition, binding):
                atom = element.atom.substitute(cond_binding)
                if not atom.is_ground:
                    raise GroundingError(
                        f"unsafe choice element variables in {rule!r}"
                    )
                if self.index.add(atom):
                    delta.append(atom)

    def prepare(self) -> None:
        """Naive-with-delta fixpoint over the possible-atom set
        (idempotent).

        Rules are re-instantiated each pass but joins are seeded from the
        delta (atoms new since the previous pass) on one body literal,
        which gives semi-naive behaviour for the common case.
        """
        if self._prepared:
            return
        self._prepared = True
        rules = [r for r in self.program.rules if r.head is not None]
        #: normal rules with no negative literals (certainty propagates)
        self._negfree = {
            id(r): isinstance(r.head, Atom)
            and not any(
                isinstance(e, Literal) and not e.positive for e in r.body
            )
            for r in rules
        }
        # Seed: facts and body-less choice heads.
        delta: List[Atom] = []
        for rule in rules:
            if not rule.body:
                if isinstance(rule.head, Atom):
                    if not rule.head.is_ground:
                        raise GroundingError(f"non-ground fact {rule!r}")
                    self._mark_certain(rule.head)
                    if self.index.add(rule.head):
                        delta.append(rule.head)
                else:
                    self._derive(rule, {}, delta)
        # Rules by positive-body signature for delta-driven firing.  The
        # entry is (rule, seed): an int indexes a body literal; a
        # (element, cond_index) tuple seeds a choice-element *condition*
        # — its atoms may only become possible after the rule body first
        # fired, and incremental seeding keeps this linear (a full
        # re-join per delta atom is quadratic in e.g. the number of
        # splice candidates, Figure 7's workload).
        by_sig = self._by_sig
        bodied_rules: List[Rule] = []
        for rule in rules:
            pos = [
                e for e in rule.body if isinstance(e, Literal) and e.positive
            ]
            if not pos and rule.body:
                # Body is only comparisons/negation: fire once.
                bodied_rules.append(rule)
            for i, e in enumerate(rule.body):
                if isinstance(e, Literal) and e.positive:
                    by_sig[e.atom.signature].append((rule, i))
            if isinstance(rule.head, ChoiceHead):
                for element in rule.head.elements:
                    for ci, c in enumerate(element.condition):
                        if isinstance(c, Literal) and c.positive:
                            by_sig[c.atom.signature].append(
                                (rule, (element, ci))
                            )
        # Fire comparison-only-body rules once (their negations ignored).
        for rule in bodied_rules:
            for binding in self.joiner.join(rule.body, {}):
                self._derive(rule, binding, delta)
        self._close(delta)

    def add_facts(self, atoms: Iterable[Atom]) -> int:
        """Resume the possible-atom fixpoint with externally supplied
        ground facts (monotone mode): the atoms become *possible* —
        never certain — and anything they newly enable is derived via
        the same delta-driven closure.  Returns how many were new."""
        self.prepare()
        delta: List[Atom] = []
        for a in atoms:
            if not a.is_ground:
                raise GroundingError(f"non-ground volatile fact {a!r}")
            if self.index.add(a):
                delta.append(a)
        added = len(delta)
        self._close(delta)
        return added

    def _close(self, delta: List[Atom]) -> None:
        """Delta-driven closure of the possible-atom fixpoint."""
        by_sig = self._by_sig
        while delta:
            atom = delta.pop()
            for rule, lit_index in by_sig.get(atom.signature, ()):  # noqa: B020
                if isinstance(lit_index, tuple):
                    # condition-driven seeding: bind the condition
                    # literal to the delta atom, then join the body plus
                    # the element's remaining condition literals
                    element, cond_index = lit_index
                    cond_literal = element.condition[cond_index]
                    binding = match_atom(cond_literal.atom, atom, {})
                    if binding is None:
                        continue
                    rest = list(rule.body) + [
                        c
                        for j, c in enumerate(element.condition)
                        if j != cond_index
                    ]
                    for full_binding in self.joiner.join(rest, binding):
                        head = element.atom.substitute(full_binding)
                        if not head.is_ground:
                            raise GroundingError(
                                f"unsafe choice element variables in {rule!r}"
                            )
                        if self.index.add(head):
                            delta.append(head)
                    continue
                seed_literal = rule.body[lit_index]
                assert isinstance(seed_literal, Literal)
                binding = match_atom(seed_literal.atom, atom, {})
                if binding is None:
                    continue
                rest = list(rule.body[:lit_index]) + list(rule.body[lit_index + 1 :])
                for full_binding in self.joiner.join(rest, binding):
                    self._derive(rule, full_binding, delta)

    # ------------------------------------------------------------------
    # phase 2: instantiation
    # ------------------------------------------------------------------
    def _split_negatives(
        self, body: Sequence[BodyElement], binding: dict
    ) -> Optional[List[Atom]]:
        """Ground the negative literals; None means the instance is
        blocked (a negated atom is a *fact*, hence certainly true)."""
        neg: List[Atom] = []
        for e in body:
            if isinstance(e, Literal) and not e.positive:
                atom = e.atom.substitute(binding)
                if not atom.is_ground:
                    raise GroundingError(
                        f"unsafe negative literal {e!r} (unbound variables)"
                    )
                if atom in self.index:
                    neg.append(atom)
                # impossible atom → `not atom` certainly true → drop
        return neg

    def _ground_pos(self, body: Sequence[BodyElement], binding: dict) -> List[Atom]:
        return [
            e.atom.substitute(binding)
            for e in body
            if isinstance(e, Literal) and e.positive
        ]

    def _certain_fixpoint(self) -> None:
        """Complete the deterministic closure for rules *with negation*.

        The possible-atom pass already propagates certainty through
        negation-free rules; here, a rule with negative literals makes
        its head certain when the positives are certain and every
        negated atom is impossible (absent from the possible set) —
        decidable only now that the possible set is final.  Newly
        certain atoms chain through the full rule set via the delta.
        """
        rules = [r for r in self.program.rules if isinstance(r.head, Atom)]
        negation_rules = [
            r
            for r in rules
            if any(isinstance(e, Literal) and not e.positive for e in r.body)
        ]
        delta: List[Atom] = []
        by_sig: Dict[Signature, List[Tuple[Rule, int]]] = defaultdict(list)
        nobody_rules: List[Rule] = []
        for rule in rules:
            has_pos = False
            for i, e in enumerate(rule.body):
                if isinstance(e, Literal) and e.positive:
                    by_sig[e.atom.signature].append((rule, i))
                    has_pos = True
            if not has_pos and rule in negation_rules:
                nobody_rules.append(rule)

        def fire(rule: Rule, binding: dict) -> None:
            for e in rule.body:
                if isinstance(e, Literal) and not e.positive:
                    neg_atom = e.atom.substitute(binding)
                    if not neg_atom.is_ground:
                        raise GroundingError(
                            f"unsafe negative literal {e!r} (unbound variables)"
                        )
                    if neg_atom in self.index:
                        return  # possibly true → head not certain
            for e in rule.body:
                if isinstance(e, Literal) and e.positive:
                    if e.atom.substitute(binding) not in self.certain:
                        return  # uncertain positive support
            head = rule.head.substitute(binding)
            if self._mark_certain(head):
                delta.append(head)

        for rule in nobody_rules:
            for binding in self.joiner.join(rule.body, {}):
                fire(rule, binding)
        # initial sweep: negation rules with positive bodies, joined over
        # the possible index and filtered on certainty in fire()
        for rule in negation_rules:
            if rule not in nobody_rules:
                for binding in self.joiner.join(rule.body, {}):
                    fire(rule, binding)
        while delta:
            atom = delta.pop()
            for rule, lit_index in by_sig.get(atom.signature, ()):  # noqa: B020
                seed = rule.body[lit_index]
                assert isinstance(seed, Literal)
                binding = match_atom(seed.atom, atom, {})
                if binding is None:
                    continue
                rest = list(rule.body[:lit_index]) + list(rule.body[lit_index + 1 :])
                for full in self.joiner.join(rest, binding):
                    fire(rule, full)

    def _rule_fully_certain(self, rule: Rule) -> bool:
        """Cheap signature-level proof that every ground instance of the
        rule derives a certain atom (so phase 2 may skip the join: the
        heads were all emitted as facts already)."""
        if not isinstance(rule.head, Atom):
            return False
        if self.monotone and any(
            isinstance(e, Literal) and not e.positive for e in rule.body
        ):
            # "no possible atom of the negated signature" can be
            # invalidated by a later add_facts — never skip these here
            # (their heads were also never marked certain).
            return False
        for e in rule.body:
            if not isinstance(e, Literal):
                continue
            sig = e.atom.signature
            if e.positive:
                if self._certain_sig_count.get(sig, 0) != len(
                    self.index.by_sig.get(sig, ())
                ):
                    return False
            else:
                if self.index.by_sig.get(sig):
                    return False  # some instances may be blocked
        return True

    def ground(self) -> GroundProgram:
        self.prepare()
        if not self.monotone:
            # only sound against a FINAL possible set: a later add_facts
            # could make a "certainly absent" negated atom possible
            self._certain_fixpoint()
        return self._assemble()

    def ground_with(
        self,
        volatile_facts: Sequence[Atom] = (),
        volatile_rules: Sequence[Rule] = (),
    ) -> GroundProgram:
        """Monotone re-ground: extend the possible-atom index with the
        volatile facts, then instantiate base + volatile.

        Volatile rules must be head-less (integrity constraints) — a
        head-bearing volatile rule would have to participate in the
        phase-1 fixpoint, which is built from the base program only.
        """
        if not self.monotone:
            raise GroundingError("ground_with requires monotone mode")
        for rule in volatile_rules:
            if rule.head is not None:
                raise GroundingError(
                    f"volatile rules must be head-less constraints: {rule!r}"
                )
        self.add_facts(volatile_facts)
        return self._assemble(volatile_facts, volatile_rules)

    def _assemble(
        self,
        extra_facts: Sequence[Atom] = (),
        extra_rules: Sequence[Rule] = (),
    ) -> GroundProgram:
        out = GroundProgram()
        # every certain atom is emitted once, as a fact
        for atom in self.certain:
            out.rules.append(GroundRule(atom))
        emitted_extra: Set[Atom] = set()
        for fact in extra_facts:
            if fact not in self.certain and fact not in emitted_extra:
                emitted_extra.add(fact)
                out.rules.append(GroundRule(fact))
        for rule in list(self.program.rules) + list(extra_rules):
            if (
                isinstance(rule.head, Atom)
                and not rule.body
                and rule.head in self.certain
            ):
                continue  # original facts already emitted above
            if rule.body and self._rule_fully_certain(rule):
                continue  # all instances subsumed by certain facts
            for binding in self.joiner.join(rule.body, {}):
                if isinstance(rule.head, Atom):
                    head = rule.head.substitute(binding)
                    if head in self.certain:
                        continue  # subsumed by the fact
                    neg = self._split_negatives(rule.body, binding)
                    pos = self._ground_pos(rule.body, binding)
                    out.rules.append(GroundRule(head, pos, neg))
                    continue
                neg = self._split_negatives(rule.body, binding)
                pos = self._ground_pos(rule.body, binding)
                if rule.head is None:
                    out.rules.append(GroundRule(None, pos, neg))
                else:
                    elements = self._ground_choice_elements(rule.head, binding)
                    if elements or rule.head.lower:
                        out.choices.append(
                            GroundChoice(
                                elements,
                                rule.head.lower,
                                rule.head.upper,
                                pos,
                                neg,
                            )
                        )
        for melem in self.program.minimizes:
            for binding in self.joiner.join(melem.body, {}):
                neg = self._split_negatives(melem.body, binding)
                pos = self._ground_pos(melem.body, binding)
                weight = melem.weight.substitute(binding)
                if not isinstance(weight, Integer):
                    raise GroundingError(
                        f"minimize weight must ground to an integer: {melem!r}"
                    )
                terms = tuple(t.substitute(binding) for t in melem.terms)
                out.minimizes.append(
                    GroundMinimize(weight.value, melem.priority, terms, pos, neg)
                )
        return out

    def _ground_choice_elements(
        self, head: ChoiceHead, binding: dict
    ) -> List[GroundChoiceElement]:
        elements: List[GroundChoiceElement] = []
        seen: Set[Atom] = set()
        for element in head.elements:
            for cond_binding in self.joiner.join(element.condition, binding):
                atom = element.atom.substitute(cond_binding)
                cond_neg: List[Atom] = []
                blocked = False
                for c in element.condition:
                    if isinstance(c, Literal) and not c.positive:
                        neg_atom = c.atom.substitute(cond_binding)
                        if neg_atom in self.index:
                            cond_neg.append(neg_atom)
                cond_pos = [
                    c.atom.substitute(cond_binding)
                    for c in element.condition
                    if isinstance(c, Literal) and c.positive
                ]
                if not blocked and atom not in seen:
                    seen.add(atom)
                    elements.append(GroundChoiceElement(atom, cond_pos, cond_neg))
        return elements


def ground(program: Program) -> GroundProgram:
    """Convenience wrapper: ground ``program`` with a fresh Grounder."""
    return Grounder(program).ground()
