"""Parser for the textual ASP dialect (core clingo subset).

Supports exactly the constructs the concretizer programs use::

    node("example").
    attr("version", node(P), V) :- pkg_fact(P, version_declared(V)).
    { attr("hash", node(N), H) : installed_hash(N, H) } 1 :- node(N).
    :- attr("variant", node(N), "bzip", "True"), not node("bzip2").
    #minimize { 100@2, Node : build(Node) }.
    % comments run to end of line

Variables are uppercase identifiers (plus ``_`` anonymous, which we
rename apart).  Strings are double-quoted; symbols lowercase; integers
may be negative.
"""

from __future__ import annotations

import itertools
import re
from typing import List, Optional, Sequence, Union

from .syntax import (
    Arith,
    Atom,
    BodyElement,
    ChoiceElement,
    ChoiceHead,
    Comparison,
    COMPARISON_OPS,
    Function,
    Integer,
    Interval,
    Literal,
    MinimizeElement,
    Program,
    Rule,
    String,
    Symbol,
    Term,
    Variable,
)

__all__ = ["parse_program", "parse_term", "AspSyntaxError"]


class AspSyntaxError(SyntaxError):
    """Raised on malformed ASP text."""


TOKEN_RE = re.compile(
    r"""
    (?P<comment>%[^\n]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<minimize>\#minimize\b)
  | (?P<maximize>\#maximize\b)
  | (?P<ifop>:-)
  | (?P<interval>\.\.)
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<arith>[+*/-])
  | (?P<int>\d+)
  | (?P<ident>[a-z_][A-Za-z0-9_']*)
  | (?P<var>[A-Z][A-Za-z0-9_']*)
  | (?P<punct>[(){};:,.@])
  | (?P<ws>\s+)
""",
    re.VERBOSE,
)

_anon_counter = itertools.count()


class _Tokens:
    def __init__(self, text: str):
        self.tokens: List[tuple] = []
        pos = 0
        line = 1
        while pos < len(text):
            m = TOKEN_RE.match(text, pos)
            if m is None:
                raise AspSyntaxError(
                    f"line {line}: unexpected character {text[pos:pos + 12]!r}"
                )
            kind = m.lastgroup
            value = m.group(0)
            line += value.count("\n")
            if kind not in ("ws", "comment"):
                self.tokens.append((kind, value, line))
            pos = m.end()
        self.pos = 0

    def peek(self, offset: int = 0) -> Optional[tuple]:
        i = self.pos + offset
        return self.tokens[i] if i < len(self.tokens) else None

    def next(self) -> tuple:
        if self.pos >= len(self.tokens):
            raise AspSyntaxError("unexpected end of input")
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> tuple:
        token = self.next()
        if token[0] != kind or (value is not None and token[1] != value):
            raise AspSyntaxError(
                f"line {token[2]}: expected {value or kind}, got {token[1]!r}"
            )
        return token

    def at(self, kind: str, value: Optional[str] = None, offset: int = 0) -> bool:
        token = self.peek(offset)
        return (
            token is not None
            and token[0] == kind
            and (value is None or token[1] == value)
        )


def _unquote(text: str) -> str:
    body = text[1:-1]
    return body.replace('\\"', '"').replace("\\\\", "\\")


class _Parser:
    def __init__(self, text: str):
        self.tokens = _Tokens(text)

    # -- terms -------------------------------------------------------------
    # grammar:  term   := sum [".." sum]
    #           sum    := product (("+"|"-") product)*
    #           product:= factor (("*"|"/") factor)*
    #           factor := "-" factor | "(" term ")" | primary
    def parse_term(self) -> Term:
        term = self._parse_sum()
        if self.tokens.at("interval"):
            self.tokens.next()
            high = self._parse_sum()
            return Interval(term, high)
        return term

    def _parse_sum(self) -> Term:
        term = self._parse_product()
        while self.tokens.at("arith", "+") or self.tokens.at("arith", "-"):
            op = self.tokens.next()[1]
            term = Arith(op, term, self._parse_product()).substitute({})
        return term

    def _parse_product(self) -> Term:
        term = self._parse_factor()
        while self.tokens.at("arith", "*") or self.tokens.at("arith", "/"):
            op = self.tokens.next()[1]
            term = Arith(op, term, self._parse_factor()).substitute({})
        return term

    def _parse_factor(self) -> Term:
        if self.tokens.at("arith", "-"):
            line = self.tokens.next()[2]
            inner = self._parse_factor()
            if isinstance(inner, Integer):
                return Integer(-inner.value)
            return Arith("-", Integer(0), inner)
        if self.tokens.at("punct", "("):
            self.tokens.next()
            term = self.parse_term()
            self.tokens.expect("punct", ")")
            return term
        return self._parse_primary()

    def _parse_primary(self) -> Term:
        token = self.tokens.next()
        kind, value, line = token
        if kind == "int":
            return Integer(int(value))
        if kind == "string":
            return String(_unquote(value))
        if kind == "var":
            return Variable(value)
        if kind == "ident":
            if value == "_":
                return Variable(f"_Anon{next(_anon_counter)}")
            if value == "not":
                raise AspSyntaxError(f"line {line}: 'not' is not a term")
            if self.tokens.at("punct", "("):
                self.tokens.next()
                args = self._parse_term_list()
                self.tokens.expect("punct", ")")
                return Function(value, args)
            return Symbol(value)
        raise AspSyntaxError(f"line {line}: expected a term, got {value!r}")

    def _parse_term_list(self) -> List[Term]:
        terms = [self.parse_term()]
        while self.tokens.at("punct", ","):
            self.tokens.next()
            terms.append(self.parse_term())
        return terms

    # -- atoms / body elements ----------------------------------------------
    def _term_to_atom(self, term: Term) -> Atom:
        if isinstance(term, Function):
            return Atom(term.name, term.args)
        if isinstance(term, Symbol):
            return Atom(term.name)
        raise AspSyntaxError(f"cannot use term {term!r} as an atom")

    def parse_body_element(self) -> BodyElement:
        if self.tokens.at("ident", "not"):
            self.tokens.next()
            term = self.parse_term()
            return Literal(self._term_to_atom(term), positive=False)
        left = self.parse_term()
        if self.tokens.at("op"):
            op = self.tokens.next()[1]
            right = self.parse_term()
            return Comparison(op, left, right)
        return Literal(self._term_to_atom(left))

    def parse_body(self) -> List[BodyElement]:
        elements = [self.parse_body_element()]
        while self.tokens.at("punct", ","):
            self.tokens.next()
            elements.append(self.parse_body_element())
        return elements

    # -- heads ------------------------------------------------------------
    def _parse_choice(self, lower: Optional[int]) -> ChoiceHead:
        self.tokens.expect("punct", "{")
        elements: List[ChoiceElement] = []
        if not self.tokens.at("punct", "}"):
            while True:
                atom = self._term_to_atom(self.parse_term())
                condition: List[BodyElement] = []
                if self.tokens.at("punct", ":"):
                    self.tokens.next()
                    condition = self._parse_condition()
                elements.append(ChoiceElement(atom, condition))
                if self.tokens.at("punct", ";"):
                    self.tokens.next()
                    continue
                break
        self.tokens.expect("punct", "}")
        upper = None
        if self.tokens.at("int"):
            upper = int(self.tokens.next()[1])
        return ChoiceHead(elements, lower, upper)

    def _parse_condition(self) -> List[BodyElement]:
        """Condition literals inside a choice element, ``,``-separated but
        terminated by ``;`` or ``}``."""
        condition = [self.parse_body_element()]
        while self.tokens.at("punct", ","):
            self.tokens.next()
            condition.append(self.parse_body_element())
        return condition

    # -- statements -----------------------------------------------------------
    def parse_minimize(self, maximize: bool) -> List[MinimizeElement]:
        self.tokens.expect("punct", "{")
        elements: List[MinimizeElement] = []
        while True:
            weight = self.parse_term()
            priority = 0
            if self.tokens.at("punct", "@"):
                self.tokens.next()
                priority = int(self.tokens.expect("int")[1])
            terms: List[Term] = []
            while self.tokens.at("punct", ","):
                self.tokens.next()
                terms.append(self.parse_term())
            body: List[BodyElement] = []
            if self.tokens.at("punct", ":"):
                self.tokens.next()
                body = self._parse_condition()
            if maximize and isinstance(weight, Integer):
                weight = Integer(-weight.value)
            elements.append(MinimizeElement(weight, priority, terms, body))
            if self.tokens.at("punct", ";"):
                self.tokens.next()
                continue
            break
        self.tokens.expect("punct", "}")
        self.tokens.expect("punct", ".")
        return elements

    def parse_statement(self, program: Program) -> None:
        if self.tokens.at("minimize") or self.tokens.at("maximize"):
            maximize = self.tokens.next()[0] == "maximize"
            for element in self.parse_minimize(maximize):
                program.add_minimize(element)
            return

        head: Union[Atom, ChoiceHead, None] = None
        if self.tokens.at("ifop"):
            pass  # constraint — no head
        elif self.tokens.at("punct", "{"):
            head = self._parse_choice(lower=None)
        elif self.tokens.at("int") and self.tokens.at("punct", "{", offset=1):
            lower = int(self.tokens.next()[1])
            head = self._parse_choice(lower)
        else:
            head = self._term_to_atom(self.parse_term())

        body: List[BodyElement] = []
        if self.tokens.at("ifop"):
            self.tokens.next()
            body = self.parse_body()
        self.tokens.expect("punct", ".")
        if isinstance(head, Atom) and not body:
            for expanded in _expand_intervals(head):
                program.add_rule(Rule(expanded, body))
            return
        program.add_rule(Rule(head, body))

    def parse_program(self) -> Program:
        program = Program()
        while self.tokens.peek() is not None:
            self.parse_statement(program)
        return program


def _expand_intervals(atom: Atom) -> List[Atom]:
    """Expand interval arguments of a fact: ``p(1..3).`` → three facts."""
    for index, arg in enumerate(atom.args):
        if isinstance(arg, Interval):
            expanded: List[Atom] = []
            for value in arg.expand():
                new_args = atom.args[:index] + (value,) + atom.args[index + 1 :]
                expanded.extend(_expand_intervals(Atom(atom.predicate, new_args)))
            return expanded
    return [atom]


def parse_program(text: str, into: Optional[Program] = None) -> Program:
    """Parse ASP source text into a :class:`Program`."""
    parsed = _Parser(text).parse_program()
    if into is not None:
        into.extend(parsed)
        return into
    return parsed


def parse_term(text: str) -> Term:
    """Parse a single ground or non-ground term (handy in tests)."""
    parser = _Parser(text)
    term = parser.parse_term()
    if parser.tokens.peek() is not None:
        raise AspSyntaxError(f"trailing input after term: {text!r}")
    return term
