"""Abstract syntax for the ASP dialect used by the concretizer.

This is the clingo fragment Spack's concretizer needs (and that the
paper's Figures 3–4 are written in):

* terms: integers, symbolic constants, double-quoted strings, variables,
  and uninterpreted functions (``node("example")``)
* normal rules ``head :- body.`` with negation-as-failure (``not a``)
* integrity constraints ``:- body.``
* cardinality-bounded choice rules ``lo { elem : cond ; ... } hi :- body.``
* builtin comparisons ``= != < <= > >=``
* ``#minimize { weight@priority, t1, ... : body }.``

Ground terms have a total order (integers < symbols/strings,
lexicographic within kinds) so comparisons behave deterministically.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Term",
    "Integer",
    "Symbol",
    "String",
    "Variable",
    "Function",
    "Arith",
    "Interval",
    "Atom",
    "Literal",
    "Comparison",
    "ChoiceElement",
    "ChoiceHead",
    "Rule",
    "MinimizeElement",
    "Program",
    "term_sort_key",
]


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------
class Term:
    """Base class for all terms."""

    __slots__ = ()

    @property
    def is_ground(self) -> bool:
        raise NotImplementedError

    def substitute(self, binding: dict) -> "Term":
        raise NotImplementedError

    def variables(self) -> Iterable[str]:
        return ()


class Integer(Term):
    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = int(value)

    is_ground = True

    def substitute(self, binding: dict) -> "Term":
        return self

    def __eq__(self, other):
        return isinstance(other, Integer) and self.value == other.value

    def __hash__(self):
        return hash(("int", self.value))

    def __repr__(self):
        return str(self.value)


class Symbol(Term):
    """A lowercase symbolic constant, e.g. ``mpich``."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    is_ground = True

    def substitute(self, binding: dict) -> "Term":
        return self

    def __eq__(self, other):
        return isinstance(other, Symbol) and self.name == other.name

    def __hash__(self):
        return hash(("sym", self.name))

    def __repr__(self):
        return self.name


class String(Term):
    """A double-quoted string constant, e.g. ``"example"``."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        self.value = value

    is_ground = True

    def substitute(self, binding: dict) -> "Term":
        return self

    def __eq__(self, other):
        return isinstance(other, String) and self.value == other.value

    def __hash__(self):
        return hash(("str", self.value))

    def __repr__(self):
        return f'"{self.value}"'


class Variable(Term):
    """An uppercase logic variable."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    is_ground = False

    def substitute(self, binding: dict) -> "Term":
        return binding.get(self.name, self)

    def variables(self) -> Iterable[str]:
        yield self.name

    def __eq__(self, other):
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self):
        return hash(("var", self.name))

    def __repr__(self):
        return self.name


class Function(Term):
    """An uninterpreted function term, e.g. ``node("example")``."""

    __slots__ = ("name", "args", "_ground", "_hash")

    def __init__(self, name: str, args: Sequence[Term]):
        self.args = tuple(args)
        self.name = name
        self._ground = all(a.is_ground for a in self.args)
        self._hash = None

    @property
    def is_ground(self) -> bool:
        return self._ground

    def substitute(self, binding: dict) -> "Term":
        if self._ground:
            return self
        return Function(self.name, [a.substitute(binding) for a in self.args])

    def variables(self) -> Iterable[str]:
        for a in self.args:
            yield from a.variables()

    def __eq__(self, other):
        return (
            isinstance(other, Function)
            and self.name == other.name
            and self.args == other.args
        )

    def __hash__(self):
        if self._hash is None:
            self._hash = hash(("fn", self.name, self.args))
        return self._hash

    def __getstate__(self):
        # str hashes are salted per process (PYTHONHASHSEED): a memoized
        # hash must never travel through pickle (the ground-program disk
        # cache), or unpickled terms poison dict/set lookups against
        # natively built equal terms in the consuming process
        return (self.name, self.args)

    def __setstate__(self, state):
        self.name, self.args = state
        self._ground = all(a.is_ground for a in self.args)
        self._hash = None

    def __repr__(self):
        return f"{self.name}({','.join(map(repr, self.args))})"


class Arith(Term):
    """An arithmetic expression over integer terms: ``X + 1``, ``W * 2``.

    Substitution reduces the expression to an :class:`Integer` as soon
    as both operands are ground (clingo evaluates arithmetic during
    grounding).  Division is integer division; division by zero is a
    grounding-time error.
    """

    __slots__ = ("op", "left", "right")

    OPS = ("+", "-", "*", "/")

    def __init__(self, op: str, left: Term, right: Term):
        if op not in self.OPS:
            raise ValueError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    @property
    def is_ground(self) -> bool:
        # a ground Arith would have been reduced already; treat any
        # remaining expression as non-ground for safety
        return False

    def _reduce(self, left: Term, right: Term) -> Term:
        if isinstance(left, Integer) and isinstance(right, Integer):
            a, b = left.value, right.value
            if self.op == "+":
                return Integer(a + b)
            if self.op == "-":
                return Integer(a - b)
            if self.op == "*":
                return Integer(a * b)
            if b == 0:
                raise ZeroDivisionError(f"division by zero in {self!r}")
            return Integer(a // b)
        return Arith(self.op, left, right)

    def substitute(self, binding: dict) -> "Term":
        return self._reduce(
            self.left.substitute(binding), self.right.substitute(binding)
        )

    def variables(self) -> Iterable[str]:
        yield from self.left.variables()
        yield from self.right.variables()

    def __eq__(self, other):
        return (
            isinstance(other, Arith)
            and self.op == other.op
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self):
        return hash((self.op, self.left, self.right))

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


class Interval(Term):
    """A clingo integer interval ``lo..hi``; expands in fact positions."""

    __slots__ = ("low", "high")

    def __init__(self, low: Term, high: Term):
        self.low = low
        self.high = high

    @property
    def is_ground(self) -> bool:
        return False  # intervals must be expanded, never matched

    def substitute(self, binding: dict) -> "Term":
        return Interval(self.low.substitute(binding), self.high.substitute(binding))

    def variables(self) -> Iterable[str]:
        yield from self.low.variables()
        yield from self.high.variables()

    def expand(self) -> List[Integer]:
        if not (isinstance(self.low, Integer) and isinstance(self.high, Integer)):
            raise ValueError(f"cannot expand non-ground interval {self!r}")
        return [Integer(v) for v in range(self.low.value, self.high.value + 1)]

    def __eq__(self, other):
        return (
            isinstance(other, Interval)
            and self.low == other.low
            and self.high == other.high
        )

    def __hash__(self):
        return hash(("interval", self.low, self.high))

    def __repr__(self):
        return f"{self.low!r}..{self.high!r}"


def term_sort_key(term: Term):
    """Total order on ground terms: integers < strings/symbols < functions."""
    if isinstance(term, Integer):
        return (0, term.value)
    if isinstance(term, (Symbol,)):
        return (1, term.name)
    if isinstance(term, String):
        return (1, term.value)
    if isinstance(term, Function):
        return (2, term.name, tuple(term_sort_key(a) for a in term.args))
    raise TypeError(f"cannot order non-ground term {term!r}")


# ---------------------------------------------------------------------------
# Atoms and literals
# ---------------------------------------------------------------------------
class Atom:
    """A predicate applied to terms: ``attr("version", node("x"), "1.0")``."""

    __slots__ = ("predicate", "args", "_ground", "_hash")

    def __init__(self, predicate: str, args: Sequence[Term] = ()):
        self.predicate = predicate
        self.args = tuple(args)
        self._ground = all(a.is_ground for a in self.args)
        self._hash = None

    @property
    def is_ground(self) -> bool:
        return self._ground

    @property
    def signature(self) -> Tuple[str, int]:
        return (self.predicate, len(self.args))

    def substitute(self, binding: dict) -> "Atom":
        if self._ground:
            return self
        return Atom(self.predicate, [a.substitute(binding) for a in self.args])

    def variables(self) -> Iterable[str]:
        for a in self.args:
            yield from a.variables()

    def __eq__(self, other):
        return (
            isinstance(other, Atom)
            and self.predicate == other.predicate
            and self.args == other.args
        )

    def __hash__(self):
        if self._hash is None:
            self._hash = hash((self.predicate, self.args))
        return self._hash

    def __getstate__(self):
        # see Function.__getstate__: never pickle the memoized hash
        return (self.predicate, self.args)

    def __setstate__(self, state):
        self.predicate, self.args = state
        self._ground = all(a.is_ground for a in self.args)
        self._hash = None

    def __repr__(self):
        if not self.args:
            return self.predicate
        return f"{self.predicate}({','.join(map(repr, self.args))})"


class Literal:
    """A possibly-negated atom occurrence in a rule body."""

    __slots__ = ("atom", "positive")

    def __init__(self, atom: Atom, positive: bool = True):
        self.atom = atom
        self.positive = positive

    def substitute(self, binding: dict) -> "Literal":
        return Literal(self.atom.substitute(binding), self.positive)

    def variables(self) -> Iterable[str]:
        return self.atom.variables()

    def __eq__(self, other):
        return (
            isinstance(other, Literal)
            and self.positive == other.positive
            and self.atom == other.atom
        )

    def __hash__(self):
        return hash((self.positive, self.atom))

    def __repr__(self):
        return repr(self.atom) if self.positive else f"not {self.atom!r}"


COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


class Comparison:
    """A builtin comparison between two terms, evaluated at ground time."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Term, right: Term):
        if op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def substitute(self, binding: dict) -> "Comparison":
        return Comparison(
            self.op, self.left.substitute(binding), self.right.substitute(binding)
        )

    def variables(self) -> Iterable[str]:
        yield from self.left.variables()
        yield from self.right.variables()

    @property
    def is_ground(self) -> bool:
        return self.left.is_ground and self.right.is_ground

    def evaluate(self) -> bool:
        """Evaluate a ground comparison using the term total order."""
        if not self.is_ground:
            raise ValueError(f"cannot evaluate non-ground comparison {self!r}")
        if self.op == "=":
            return self.left == self.right
        if self.op == "!=":
            return self.left != self.right
        lk, rk = term_sort_key(self.left), term_sort_key(self.right)
        if self.op == "<":
            return lk < rk
        if self.op == "<=":
            return lk <= rk
        if self.op == ">":
            return lk > rk
        return lk >= rk

    def __repr__(self):
        return f"{self.left!r} {self.op} {self.right!r}"


BodyElement = Union[Literal, Comparison]


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------
class ChoiceElement:
    """One ``atom : cond1, cond2`` element inside a choice head."""

    __slots__ = ("atom", "condition")

    def __init__(self, atom: Atom, condition: Sequence[BodyElement] = ()):
        self.atom = atom
        self.condition = tuple(condition)

    def substitute(self, binding: dict) -> "ChoiceElement":
        return ChoiceElement(
            self.atom.substitute(binding),
            [c.substitute(binding) for c in self.condition],
        )

    def __repr__(self):
        if self.condition:
            return f"{self.atom!r} : {', '.join(map(repr, self.condition))}"
        return repr(self.atom)


class ChoiceHead:
    """``lo { elements } hi`` — bounds may be None (unbounded)."""

    __slots__ = ("elements", "lower", "upper")

    def __init__(
        self,
        elements: Sequence[ChoiceElement],
        lower: Optional[int] = None,
        upper: Optional[int] = None,
    ):
        self.elements = tuple(elements)
        self.lower = lower
        self.upper = upper

    def substitute(self, binding: dict) -> "ChoiceHead":
        return ChoiceHead(
            [e.substitute(binding) for e in self.elements], self.lower, self.upper
        )

    def __repr__(self):
        lo = f"{self.lower} " if self.lower is not None else ""
        hi = f" {self.upper}" if self.upper is not None else ""
        return f"{lo}{{ {'; '.join(map(repr, self.elements))} }}{hi}"


class Rule:
    """A normal rule, constraint (head None), or choice rule."""

    __slots__ = ("head", "body")

    def __init__(
        self,
        head: Union[Atom, ChoiceHead, None],
        body: Sequence[BodyElement] = (),
    ):
        self.head = head
        self.body = tuple(body)

    @property
    def is_fact(self) -> bool:
        return isinstance(self.head, Atom) and not self.body and self.head.is_ground

    @property
    def is_constraint(self) -> bool:
        return self.head is None

    @property
    def is_choice(self) -> bool:
        return isinstance(self.head, ChoiceHead)

    def variables(self) -> Iterable[str]:
        if isinstance(self.head, Atom):
            yield from self.head.variables()
        elif isinstance(self.head, ChoiceHead):
            for e in self.head.elements:
                yield from e.atom.variables()
                for c in e.condition:
                    yield from c.variables()
        for b in self.body:
            yield from b.variables()

    def __repr__(self):
        head = "" if self.head is None else repr(self.head)
        if not self.body:
            return f"{head}."
        return f"{head} :- {', '.join(map(repr, self.body))}."


class MinimizeElement:
    """One ``weight@priority, terms : body`` element of a #minimize."""

    __slots__ = ("weight", "priority", "terms", "body")

    def __init__(
        self,
        weight: Term,
        priority: int,
        terms: Sequence[Term],
        body: Sequence[BodyElement],
    ):
        self.weight = weight
        self.priority = priority
        self.terms = tuple(terms)
        self.body = tuple(body)

    def substitute(self, binding: dict) -> "MinimizeElement":
        return MinimizeElement(
            self.weight.substitute(binding),
            self.priority,
            [t.substitute(binding) for t in self.terms],
            [b.substitute(binding) for b in self.body],
        )

    def variables(self) -> Iterable[str]:
        yield from self.weight.variables()
        for t in self.terms:
            yield from t.variables()
        for b in self.body:
            yield from b.variables()

    def __repr__(self):
        terms = ",".join(map(repr, (self.weight, *self.terms)))
        body = ", ".join(map(repr, self.body))
        return f"#minimize {{ {terms}@{self.priority} : {body} }}."


class Program:
    """A collection of rules and minimize statements."""

    def __init__(self):
        self.rules: List[Rule] = []
        self.minimizes: List[MinimizeElement] = []

    def add_rule(self, rule: Rule) -> None:
        self.rules.append(rule)

    def add_fact(self, atom: Atom) -> None:
        if not atom.is_ground:
            raise ValueError(f"facts must be ground: {atom!r}")
        self.rules.append(Rule(atom))

    def add_minimize(self, element: MinimizeElement) -> None:
        self.minimizes.append(element)

    def extend(self, other: "Program") -> None:
        self.rules.extend(other.rules)
        self.minimizes.extend(other.minimizes)

    def __len__(self) -> int:
        return len(self.rules)

    def __repr__(self):
        return f"<Program: {len(self.rules)} rules, {len(self.minimizes)} minimize elements>"
