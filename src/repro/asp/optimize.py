"""Lexicographic ``#minimize`` optimization over stable models.

clingo semantics: higher ``@priority`` levels dominate; within a level
the objective is the sum of weights of satisfied minimize elements.

Strategy: model-guided bound strengthening.  For each priority from
highest to lowest:

1. take the cost of the incumbent model at this priority;
2. build (once, with cross-bound node sharing) a pseudo-Boolean
   "budget" circuit whose root literal *assumes* ``Σ wᵢxᵢ ≤ k``;
3. repeatedly solve under the assumption ``cost ≤ incumbent - 1``; each
   SAT answer lowers the incumbent, UNSAT proves optimality;
4. permanently assert the optimal bound and recurse to the next level.

The PB circuit uses the standard BDD/DP decomposition memoized on
``(index, residual_budget)`` with budgets clamped to suffix sums, so
successive bounds share most of their structure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from .stable import StableModelFinder
from .syntax import Atom
from .translate import Translator

__all__ = ["Optimizer", "OptimizeResult"]


class OptimizeResult:
    """The outcome of an optimization run."""

    __slots__ = ("model", "cost", "models_seen", "proven_optimal")

    def __init__(
        self,
        model: Optional[Set[Atom]],
        cost: Dict[int, int],
        models_seen: int,
        proven_optimal: bool,
    ):
        self.model = model
        self.cost = cost
        self.models_seen = models_seen
        self.proven_optimal = proven_optimal

    @property
    def satisfiable(self) -> bool:
        return self.model is not None


class _PBBudget:
    """Assumable pseudo-Boolean ``≤ k`` circuit for one objective level."""

    def __init__(self, translator: Translator, terms: Sequence[Tuple[int, int]]):
        self.solver = translator.solver
        # Normalize: drop zero weights, sort descending for better sharing.
        self.terms = sorted(
            ((w, v) for w, v in terms if w != 0), key=lambda t: -t[0]
        )
        if any(w < 0 for w, _ in self.terms):
            raise ValueError("negative minimize weights are not supported")
        self.suffix_sums: List[int] = [0] * (len(self.terms) + 1)
        for i in range(len(self.terms) - 1, -1, -1):
            self.suffix_sums[i] = self.suffix_sums[i + 1] + self.terms[i][0]
        self._nodes: Dict[Tuple[int, int], int] = {}
        self._const_true: Optional[int] = None

    def root(self, bound: int) -> Optional[int]:
        """A literal that, assumed true, enforces ``Σ ≤ bound``.

        Returns None when the bound is trivially satisfied (no
        assumption needed).
        """
        if bound >= self.suffix_sums[0]:
            return None
        return self._node(0, bound)

    def _node(self, i: int, budget: int) -> int:
        budget = min(budget, self.suffix_sums[i])  # clamp for sharing
        if budget < 0:
            return -self._true()  # impossible: assuming it forces UNSAT
        if budget == self.suffix_sums[i]:
            return self._true()
        key = (i, budget)
        cached = self._nodes.get(key)
        if cached is not None:
            return cached
        weight, x = self.terms[i]
        var = self.solver.new_var()
        hi = self._node(i + 1, budget - weight)  # x true: spend weight
        lo = self._node(i + 1, budget)  # x false
        # var ∧ x → hi ;  var ∧ ¬x → lo
        self.solver.add_clause([-var, -x, hi])
        self.solver.add_clause([-var, x, lo])
        self._nodes[key] = var
        return var

    def _true(self) -> int:
        if self._const_true is None:
            self._const_true = self.solver.new_var()
            self.solver.add_clause([self._const_true])
        return self._const_true


class Optimizer:
    """Runs lexicographic minimization on top of a StableModelFinder."""

    def __init__(self, translator: Translator):
        self.translator = translator
        self.finder = StableModelFinder(translator)

    def optimize(
        self,
        on_model=None,
        base_assumptions: Sequence[int] = (),
    ) -> OptimizeResult:
        models_seen = 0
        model = self.finder.solve(list(base_assumptions))
        if model is None:
            return OptimizeResult(None, {}, 0, True)
        models_seen += 1
        if on_model is not None:
            on_model(model)

        assumptions: List[int] = list(base_assumptions)
        best_model = model
        priorities = sorted(self.translator.objectives, reverse=True)
        for priority in priorities:
            terms = self.translator.objectives[priority]
            budget = _PBBudget(self.translator, terms)
            best_cost = self._cost(best_model, terms)
            # Bracketed descent: probe the midpoint of [floor, best).
            # A SAT probe may overshoot downward (the model's true cost
            # bounds it); an UNSAT probe raises the floor.  Converges in
            # O(log range) solves instead of one solve per cost step —
            # essential when an objective spans many values (e.g. 100
            # provider weights in the Figure-7 workload).
            floor = 0
            while best_cost > floor:
                probe = (floor + best_cost - 1) // 2
                root = budget.root(probe)
                if root is None:
                    break  # bound is trivially met; cannot go below 0 sum
                candidate = self.finder.solve(assumptions + [root])
                if candidate is None:
                    floor = probe + 1
                    continue
                models_seen += 1
                new_cost = self._cost(candidate, terms)
                assert new_cost < best_cost, "PB bound failed to strengthen"
                best_model = candidate
                best_cost = new_cost
                if on_model is not None:
                    on_model(candidate)
            # Freeze this level at its optimum before descending.
            root = budget.root(best_cost)
            if root is not None:
                assumptions.append(root)
            # Re-anchor the incumbent (solver state may have moved on).
            best_model = self.finder.solve(assumptions)
            assert best_model is not None, "optimum must remain satisfiable"

        cost = {
            priority: self._cost(best_model, self.translator.objectives[priority])
            for priority in priorities
        }
        return OptimizeResult(best_model, cost, models_seen, True)

    def _cost(self, model: Set[Atom], terms) -> int:
        # Indicator variables are Tseitin bodies — recompute from the
        # last solver model rather than the atom set.
        solver_model = self.translator.solver.model()
        return sum(w for w, var in terms if solver_model[var] == 1)
