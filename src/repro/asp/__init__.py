"""A from-scratch Answer Set Programming engine (the clingo stand-in).

Pipeline: :mod:`parser` → :mod:`grounder` → :mod:`translate` (Clark
completion to CNF) → :mod:`sat` (CDCL) → :mod:`stable` (lazy loop
formulas) → :mod:`optimize` (lexicographic ``#minimize``), fronted by
the :class:`~repro.asp.api.Control` façade.
"""

from .syntax import (
    Arith,
    Atom,
    ChoiceElement,
    ChoiceHead,
    Comparison,
    Function,
    Integer,
    Interval,
    Literal,
    MinimizeElement,
    Program,
    Rule,
    String,
    Symbol,
    Term,
    Variable,
)
from .parser import parse_program, parse_term, AspSyntaxError
from .grounder import Grounder, GroundingError, ground
from .ground import GroundProgram, GroundRule, GroundChoice, GroundMinimize
from .sat import Solver, SolverError
from .translate import Translator
from .stable import StableModelFinder
from .optimize import Optimizer, OptimizeResult
from .api import Control, Model, SolveResult

__all__ = [
    "Arith",
    "Atom",
    "Interval",
    "ChoiceElement",
    "ChoiceHead",
    "Comparison",
    "Function",
    "Integer",
    "Literal",
    "MinimizeElement",
    "Program",
    "Rule",
    "String",
    "Symbol",
    "Term",
    "Variable",
    "parse_program",
    "parse_term",
    "AspSyntaxError",
    "Grounder",
    "GroundingError",
    "ground",
    "GroundProgram",
    "GroundRule",
    "GroundChoice",
    "GroundMinimize",
    "Solver",
    "SolverError",
    "Translator",
    "StableModelFinder",
    "Optimizer",
    "OptimizeResult",
    "Control",
    "Model",
    "SolveResult",
]
