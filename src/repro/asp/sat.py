"""A CDCL SAT solver: the propositional core under the ASP engine.

Features: two-watched-literal propagation, first-UIP conflict analysis
with clause learning, EVSIDS branching, phase saving, Luby restarts,
solving under assumptions, and incremental clause addition between
``solve()`` calls (used for ASSAT loop formulas and optimization bounds).

Literals are non-zero ints (DIMACS convention): ``v`` is the positive
literal of variable ``v``, ``-v`` the negative one.  Variables are
allocated through :meth:`Solver.new_var`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["Solver", "SolverError", "TRUE", "FALSE", "UNASSIGNED"]

TRUE = 1
FALSE = -1
UNASSIGNED = 0


class SolverError(RuntimeError):
    """Raised on API misuse (e.g. literals for unallocated variables)."""


def _luby(i: int) -> int:
    """The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ..."""
    k = 1
    while (1 << k) - 1 < i:
        k += 1
    while (1 << k) - 1 != i:
        k -= 1
        i -= (1 << k) - 1
        while (1 << k) - 1 < i:
            k += 1
    return 1 << (k - 1)


class _VarOrder:
    """MiniSat-style indexed binary max-heap over variable activities.

    Each variable appears at most once; ``bump`` percolates in place
    (decrease-key), so decisions pop in O(log n) with no stale entries.
    """

    __slots__ = ("activity", "heap", "position")

    def __init__(self, activity: List[float]):
        self.activity = activity  # shared with the solver
        self.heap: List[int] = []
        self.position: List[int] = [-1]  # var → heap index, -1 = absent

    def register(self, var: int) -> None:
        self.position.append(-1)
        self.insert(var)

    def __contains__(self, var: int) -> bool:
        return self.position[var] >= 0

    def insert(self, var: int) -> None:
        if self.position[var] >= 0:
            return
        self.heap.append(var)
        self.position[var] = len(self.heap) - 1
        self._up(len(self.heap) - 1)

    def bump(self, var: int) -> None:
        pos = self.position[var]
        if pos >= 0:
            self._up(pos)

    def pop(self) -> Optional[int]:
        if not self.heap:
            return None
        top = self.heap[0]
        last = self.heap.pop()
        self.position[top] = -1
        if self.heap:
            self.heap[0] = last
            self.position[last] = 0
            self._down(0)
        return top

    def _up(self, i: int) -> None:
        heap, position, activity = self.heap, self.position, self.activity
        var = heap[i]
        act = activity[var]
        while i > 0:
            parent = (i - 1) >> 1
            pvar = heap[parent]
            if activity[pvar] >= act:
                break
            heap[i] = pvar
            position[pvar] = i
            i = parent
        heap[i] = var
        position[var] = i

    def _down(self, i: int) -> None:
        heap, position, activity = self.heap, self.position, self.activity
        var = heap[i]
        act = activity[var]
        size = len(heap)
        while True:
            left = 2 * i + 1
            if left >= size:
                break
            right = left + 1
            child = (
                right
                if right < size and activity[heap[right]] > activity[heap[left]]
                else left
            )
            cvar = heap[child]
            if act >= activity[cvar]:
                break
            heap[i] = cvar
            position[cvar] = i
            i = child
        heap[i] = var
        position[var] = i


class Solver:
    """CDCL SAT solver with incremental clause addition."""

    def __init__(self):
        self.num_vars = 0
        #: assignment per variable index (1-based): TRUE/FALSE/UNASSIGNED
        self.assign: List[int] = [UNASSIGNED]
        self.level: List[int] = [0]
        self.reason: List[Optional[list]] = [None]
        self.activity: List[float] = [0.0]
        self.phase: List[bool] = [False]
        #: watch lists indexed by literal key (2*v for v, 2*v+1 for -v)
        self.watches: List[List[list]] = [[], []]
        self.clauses: List[list] = []
        self.learned: List[list] = []
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.ok = True  # False once a top-level conflict is found
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        #: VSIDS decision order (indexed heap, MiniSat's order_heap)
        self._order = _VarOrder(self.activity)

    # ------------------------------------------------------------------
    # variables and clauses
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        self.num_vars += 1
        self.assign.append(UNASSIGNED)
        self.level.append(0)
        self.reason.append(None)
        self.activity.append(0.0)
        self.phase.append(False)
        self.watches.append([])  # 2*v
        self.watches.append([])  # 2*v + 1
        self._order.register(self.num_vars)
        return self.num_vars

    @staticmethod
    def _watch_key(lit: int) -> int:
        return 2 * lit if lit > 0 else -2 * lit + 1

    def value(self, lit: int) -> int:
        """TRUE/FALSE/UNASSIGNED value of a literal under current trail."""
        v = self.assign[abs(lit)]
        if v == UNASSIGNED:
            return UNASSIGNED
        return v if lit > 0 else -v

    def add_clause(self, lits: Sequence[int]) -> bool:
        """Add a clause; returns False if it makes the formula trivially
        UNSAT.  Safe to call between solve() calls (state is reset to
        decision level 0 first)."""
        if not self.ok:
            return False
        if self.trail_lim:
            self._cancel_until(0)
        seen = set()
        clause: List[int] = []
        for lit in lits:
            var = abs(lit)
            if var == 0 or var > self.num_vars:
                raise SolverError(f"literal {lit} out of range")
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            value = self.value(lit)
            if value == TRUE:
                return True  # already satisfied at level 0
            if value == FALSE:
                continue  # falsified at level 0 — drop literal
            clause.append(lit)
        if not clause:
            self.ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self.ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self.ok = False
                return False
            return True
        self.clauses.append(clause)
        self._attach(clause)
        return True

    def _attach(self, clause: list) -> None:
        self.watches[self._watch_key(clause[0])].append(clause)
        self.watches[self._watch_key(clause[1])].append(clause)

    # ------------------------------------------------------------------
    # trail management
    # ------------------------------------------------------------------
    def _enqueue(self, lit: int, reason: Optional[list]) -> bool:
        value = self.value(lit)
        if value == TRUE:
            return True
        if value == FALSE:
            return False
        var = abs(lit)
        self.assign[var] = TRUE if lit > 0 else FALSE
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.phase[var] = lit > 0
        self.trail.append(lit)
        return True

    def _cancel_until(self, target_level: int) -> None:
        if len(self.trail_lim) <= target_level:
            return
        boundary = self.trail_lim[target_level]
        for lit in reversed(self.trail[boundary:]):
            var = abs(lit)
            self.assign[var] = UNASSIGNED
            self.reason[var] = None
            self._order.insert(var)
        del self.trail[boundary:]
        del self.trail_lim[target_level:]
        self.qhead = min(self.qhead, len(self.trail))

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> Optional[list]:
        """Unit propagation; returns a conflicting clause or None.

        The inner loop is the solver's hottest path: literal values are
        read straight out of the assignment array instead of through
        :meth:`value`, and unit enqueues are inlined.
        """
        assign = self.assign
        watches = self.watches
        trail = self.trail
        level = len(self.trail_lim)
        levels = self.level
        reasons = self.reason
        phases = self.phase
        while self.qhead < len(trail):
            lit = trail[self.qhead]
            self.qhead += 1
            self.propagations += 1
            false_lit = -lit
            watch_list = watches[2 * false_lit if false_lit > 0 else -2 * false_lit + 1]
            i = 0
            j = 0
            n = len(watch_list)
            while i < n:
                clause = watch_list[i]
                i += 1
                # Normalize: watched literals live in positions 0 and 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                first_val = assign[first] if first > 0 else -assign[-first]
                if first_val == TRUE:
                    watch_list[j] = clause
                    j += 1
                    continue
                # Look for a new literal to watch.
                found = False
                for k in range(2, len(clause)):
                    other = clause[k]
                    if (assign[other] if other > 0 else -assign[-other]) != FALSE:
                        clause[1] = other
                        clause[k] = false_lit
                        watches[2 * other if other > 0 else -2 * other + 1].append(
                            clause
                        )
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                watch_list[j] = clause
                j += 1
                if first_val == FALSE:
                    # conflict: keep remaining watches, restore list
                    while i < n:
                        watch_list[j] = watch_list[i]
                        j += 1
                        i += 1
                    del watch_list[j:]
                    return clause
                # inline enqueue of the unit literal
                var = first if first > 0 else -first
                assign[var] = TRUE if first > 0 else FALSE
                levels[var] = level
                reasons[var] = clause
                phases[var] = first > 0
                trail.append(first)
            del watch_list[j:]
        return None

    # ------------------------------------------------------------------
    # conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        self._order.bump(var)
        if self.activity[var] > 1e100:
            for i in range(1, self.num_vars + 1):
                self.activity[i] *= 1e-100
            self.var_inc *= 1e-100
            # uniform rescale preserves the heap order — no rebuild

    def _analyze(self, conflict: list) -> tuple:
        """Derive a 1UIP learned clause; returns (clause, backjump_level)."""
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = None
        reason: Optional[list] = conflict
        index = len(self.trail) - 1
        current_level = len(self.trail_lim)
        while True:
            assert reason is not None
            for q in reason:
                if lit is not None and q == lit:
                    continue
                var = abs(q)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] == current_level:
                        counter += 1
                    else:
                        learned.append(q)
            # find next literal on the trail at the current level
            while True:
                lit = self.trail[index]
                index -= 1
                if seen[abs(lit)]:
                    break
            counter -= 1
            seen[abs(lit)] = False
            if counter == 0:
                break
            reason = self.reason[abs(lit)]
        learned[0] = -lit
        # minimal backjump level = max level among the other literals
        if len(learned) == 1:
            backjump = 0
        else:
            max_i = 1
            for i in range(2, len(learned)):
                if self.level[abs(learned[i])] > self.level[abs(learned[max_i])]:
                    max_i = i
            learned[1], learned[max_i] = learned[max_i], learned[1]
            backjump = self.level[abs(learned[1])]
        return learned, backjump

    # ------------------------------------------------------------------
    # branching
    # ------------------------------------------------------------------
    def _decide(self) -> Optional[int]:
        order = self._order
        assign = self.assign
        while True:
            var = order.pop()
            if var is None:
                return None
            if assign[var] == UNASSIGNED:
                return var if self.phase[var] else -var

    # ------------------------------------------------------------------
    # main search
    # ------------------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        """Search for a model; returns True (SAT) or False (UNSAT).

        Under ``assumptions``, False means UNSAT *under those
        assumptions*; the solver remains usable afterwards.
        """
        if not self.ok:
            return False
        self._cancel_until(0)
        conflict = self._propagate()
        if conflict is not None:
            self.ok = False
            return False

        restart_count = 0
        conflict_budget = 100 * _luby(restart_count + 1)
        conflicts_here = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                if not self.trail_lim:
                    self.ok = False
                    return False
                if len(self.trail_lim) <= len(assumptions):
                    # Conflict inside the assumption prefix → UNSAT under
                    # assumptions, but the formula itself may be fine.
                    # (Only exact when each assumption got its own level,
                    # which _assume ensures.)
                    self._cancel_until(0)
                    return False
                learned, backjump = self._analyze(conflict)
                backjump = max(backjump, self._assumption_level(assumptions))
                self._cancel_until(backjump)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        self.ok = False
                        return False
                else:
                    self.learned.append(learned)
                    self._attach(learned)
                    self._enqueue(learned[0], learned)
                self.var_inc /= self.var_decay
                continue

            if conflicts_here >= conflict_budget:
                restart_count += 1
                conflict_budget = 100 * _luby(restart_count + 1)
                conflicts_here = 0
                self._cancel_until(self._assumption_level(assumptions))
                continue

            # Plant assumptions one level at a time.
            planted = len(self.trail_lim)
            if planted < len(assumptions):
                lit = assumptions[planted]
                value = self.value(lit)
                if value == FALSE:
                    self._cancel_until(0)
                    return False
                self.trail_lim.append(len(self.trail))
                if value == UNASSIGNED:
                    self._enqueue(lit, None)
                continue

            decision = self._decide()
            if decision is None:
                return True  # all variables assigned, no conflict
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(decision, None)

    def _assumption_level(self, assumptions: Sequence[int]) -> int:
        return min(len(assumptions), len(self.trail_lim))

    # ------------------------------------------------------------------
    # model access
    # ------------------------------------------------------------------
    def model(self) -> List[int]:
        """The satisfying assignment after a True solve(): list indexed by
        variable, entries TRUE/FALSE."""
        return list(self.assign)

    def model_true_vars(self) -> Iterable[int]:
        for v in range(1, self.num_vars + 1):
            if self.assign[v] == TRUE:
                yield v

    def stats(self) -> Dict[str, int]:
        return {
            "vars": self.num_vars,
            "clauses": len(self.clauses),
            "learned": len(self.learned),
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
        }
