"""Translate a ground ASP program to CNF via Clark completion.

Encoding summary (standard ASSAT-style reduction):

* every distinct ground atom gets a SAT variable;
* every rule body gets a Tseitin variable ``b ↔ conj(body)``;
* a normal rule contributes ``b → head``;
* the *completion* adds, per atom, ``head → ∨ supports`` where supports
  are the body variables of rules deriving it plus, for choice atoms,
  per-element support variables ``s ↔ choice_body ∧ element_condition``
  (choice atoms get only the "needs support" direction — they remain
  free to be false);
* choice cardinality bounds become unary-counter constraints over
  element-active variables, gated by the choice body;
* integrity constraints become single clauses.

Models of this CNF are exactly the *supported* models of the program;
:mod:`repro.asp.stable` then filters/repairs to *stable* models with
lazy loop formulas.  The translator records, per atom, its support
variables together with the positive atoms each support depends on — the
data needed to build loop formulas.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .ground import GroundChoice, GroundProgram, GroundRule
from .sat import Solver
from .syntax import Atom

__all__ = ["Translator", "Support"]


class Support:
    """One way an atom can be derived: a SAT variable that, when true,
    supports the atom, plus the positive atoms that support depends on
    (needed for loop-formula externality checks)."""

    __slots__ = ("var", "pos_atoms")

    def __init__(self, var: int, pos_atoms: FrozenSet[Atom]):
        self.var = var
        self.pos_atoms = pos_atoms


class Translator:
    """Builds the CNF for a ground program inside a fresh Solver."""

    def __init__(self, ground_program: GroundProgram):
        self.program = ground_program
        self.solver = Solver()
        self.atom_var: Dict[Atom, int] = {}
        self.var_atom: Dict[int, Atom] = {}
        #: fact atoms are compile-time TRUE constants — no SAT variable
        self.facts: set = {
            r.head
            for r in ground_program.rules
            if r.head is not None and not r.pos and not r.neg
        }
        #: per-atom derivation supports (for completion + loop formulas)
        self.supports: Dict[Atom, List[Support]] = {}
        #: atoms appearing in some choice head (their truth is a choice)
        self.choice_atoms: set = set()
        #: minimize structure: priority -> list of (weight, indicator var)
        self.objectives: Dict[int, List[Tuple[int, int]]] = {}
        #: true constant variable (always assigned TRUE)
        self._true_var: Optional[int] = None
        self._body_cache: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], int] = {}
        self._build()

    # ------------------------------------------------------------------
    # variable helpers
    # ------------------------------------------------------------------
    def var_for(self, atom: Atom) -> int:
        var = self.atom_var.get(atom)
        if var is None:
            if atom in self.facts:
                # facts share the single TRUE constant; clauses they
                # appear in are simplified away at level 0
                var = self.true_var()
            else:
                var = self.solver.new_var()
                self.var_atom[var] = atom
            self.atom_var[atom] = var
        return var

    def true_var(self) -> int:
        if self._true_var is None:
            self._true_var = self.solver.new_var()
            self.solver.add_clause([self._true_var])
        return self._true_var

    def body_var(self, pos: Sequence[Atom], neg: Sequence[Atom]) -> int:
        """Tseitin variable for ``conj(pos) ∧ conj(¬neg)``, cached."""
        pos_vars = tuple(sorted(self.var_for(a) for a in pos))
        neg_vars = tuple(sorted(self.var_for(a) for a in neg))
        key = (pos_vars, neg_vars)
        cached = self._body_cache.get(key)
        if cached is not None:
            return cached
        if not pos_vars and not neg_vars:
            var = self.true_var()
        else:
            lits = [v for v in pos_vars] + [-v for v in neg_vars]
            if len(lits) == 1:
                var = lits[0] if lits[0] > 0 else None
                if var is None:
                    # single negative literal: need a proper alias var
                    var = self.solver.new_var()
                    self.solver.add_clause([-var, lits[0]])
                    self.solver.add_clause([var, -lits[0]])
            else:
                var = self.solver.new_var()
                for lit in lits:
                    self.solver.add_clause([-var, lit])
                self.solver.add_clause([var] + [-lit for lit in lits])
        self._body_cache[key] = var
        return var

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    def _build(self) -> None:
        # Pass 1: create atom variables for everything mentioned, so the
        # completion's "no support → false" covers body-only atoms too.
        for rule in self.program.rules:
            if rule.head is not None:
                self.var_for(rule.head)
            for a in rule.pos:
                self.var_for(a)
            for a in rule.neg:
                self.var_for(a)
        for choice in self.program.choices:
            for a in choice.pos:
                self.var_for(a)
            for a in choice.neg:
                self.var_for(a)
            for element in choice.elements:
                self.var_for(element.atom)
                for a in element.cond_pos:
                    self.var_for(a)
                for a in element.cond_neg:
                    self.var_for(a)
        for melem in self.program.minimizes:
            for a in melem.pos:
                self.var_for(a)
            for a in melem.neg:
                self.var_for(a)

        # Pass 2: rules.
        for rule in self.program.rules:
            self._encode_rule(rule)
        for choice in self.program.choices:
            self._encode_choice(choice)

        # Pass 3: completion — every atom needs some support.
        for atom, var in self.atom_var.items():
            if var == self._true_var:
                continue
            supports = self.supports.get(atom, ())
            clause = [-var] + [s.var for s in supports]
            self.solver.add_clause(clause)

        # Pass 4: objectives.
        self._encode_minimizes()

    def _add_support(self, atom: Atom, var: int, pos_atoms) -> None:
        self.supports.setdefault(atom, []).append(
            Support(var, frozenset(pos_atoms))
        )

    def _encode_rule(self, rule: GroundRule) -> None:
        if rule.head is not None and rule.head in self.facts:
            self.var_for(rule.head)  # ensure it decodes as true
            return  # a fact needs no clauses, body, or support entries
        if rule.head is None:
            # integrity constraint: ¬(pos ∧ ¬neg)
            clause = [-self.var_for(a) for a in rule.pos] + [
                self.var_for(a) for a in rule.neg
            ]
            self.solver.add_clause(clause)
            return
        head_var = self.var_for(rule.head)
        body = self.body_var(rule.pos, rule.neg)
        self.solver.add_clause([-body, head_var])
        self._add_support(rule.head, body, rule.pos)

    def _encode_choice(self, choice: GroundChoice) -> None:
        body = self.body_var(choice.pos, choice.neg)
        active_vars: List[int] = []
        for element in choice.elements:
            atom_var = self.var_for(element.atom)
            self.choice_atoms.add(element.atom)
            if element.cond_pos or element.cond_neg:
                cond = self.body_var(element.cond_pos, element.cond_neg)
                support = self.solver.new_var()
                # support ↔ body ∧ cond
                self.solver.add_clause([-support, body])
                self.solver.add_clause([-support, cond])
                self.solver.add_clause([support, -body, -cond])
                pos_atoms = set(choice.pos) | set(element.cond_pos)
            else:
                support = body
                pos_atoms = set(choice.pos)
            self._add_support(element.atom, support, pos_atoms)
            # Count an element as active iff its atom is true AND its
            # support condition holds (clingo counts set members).
            if support == self.true_var():
                active_vars.append(atom_var)
            else:
                active = self.solver.new_var()
                self.solver.add_clause([-active, atom_var])
                self.solver.add_clause([-active, support])
                self.solver.add_clause([active, -atom_var, -support])
                active_vars.append(active)

        lower = choice.lower
        upper = choice.upper
        n = len(active_vars)
        if upper is not None and upper < n:
            self._at_most_k(active_vars, upper, gate=body)
        if lower is not None and lower > 0:
            if lower > n:
                # Impossible to meet the bound: the body must be false.
                self.solver.add_clause([-body])
            elif lower == 1:
                self.solver.add_clause([-body] + active_vars)
            else:
                self._at_least_k(active_vars, lower, gate=body)

    # ------------------------------------------------------------------
    # cardinality constraints (sequential unary counters)
    # ------------------------------------------------------------------
    def _at_most_k(self, xs: List[int], k: int, gate: int) -> None:
        """Under ``gate``, at most ``k`` of ``xs`` are true."""
        if k == 1:
            if len(xs) <= 12:
                for i in range(len(xs)):
                    for j in range(i + 1, len(xs)):
                        self.solver.add_clause([-gate, -xs[i], -xs[j]])
                return
        # registers r[j] = "at least j+1 of the inputs seen so far"
        registers: List[int] = []
        for x in xs:
            new_regs: List[int] = []
            width = min(len(registers) + 1, k + 1)
            for j in range(width):
                r = self.solver.new_var()
                # r_j ← prev_j  (count persists)
                if j < len(registers):
                    self.solver.add_clause([-registers[j], r])
                # r_j ← prev_{j-1} ∧ x   (count increments)
                if j == 0:
                    self.solver.add_clause([-x, r])
                elif j - 1 < len(registers):
                    self.solver.add_clause([-registers[j - 1], -x, r])
                new_regs.append(r)
            registers = new_regs
            if len(registers) > k:
                # overflow register true → violation (when gated)
                self.solver.add_clause([-gate, -registers[k]])

    def _at_least_k(self, xs: List[int], k: int, gate: int) -> None:
        """Under ``gate``, at least ``k`` of ``xs`` are true.

        Encoded as: at most ``len(xs) - k`` of the negations are true.
        """
        negs = []
        for x in xs:
            neg = self.solver.new_var()
            self.solver.add_clause([neg, x])
            self.solver.add_clause([-neg, -x])
            negs.append(neg)
        self._at_most_k(negs, len(xs) - k, gate)

    # ------------------------------------------------------------------
    # minimize
    # ------------------------------------------------------------------
    def _encode_minimizes(self) -> None:
        # clingo semantics: weights are summed over distinct
        # (weight, priority, terms) tuples that hold in the model.
        groups: Dict[Tuple, List[int]] = {}
        for melem in self.program.minimizes:
            body = self.body_var(melem.pos, melem.neg)
            key = (melem.priority, melem.weight, melem.terms)
            groups.setdefault(key, []).append(body)
        for (priority, weight, _terms), bodies in groups.items():
            if len(bodies) == 1:
                indicator = bodies[0]
            else:
                indicator = self.solver.new_var()
                for b in bodies:
                    self.solver.add_clause([-b, indicator])
                self.solver.add_clause([-indicator] + bodies)
            self.objectives.setdefault(priority, []).append((weight, indicator))

    # ------------------------------------------------------------------
    # model decoding
    # ------------------------------------------------------------------
    def decode_model(self) -> set:
        """The set of true atoms in the solver's current model."""
        model = self.solver.model()
        return {
            atom
            for atom, var in self.atom_var.items()
            if model[var] == 1
        }

    def cost_of_model(self) -> Dict[int, int]:
        """Objective cost per priority for the current model."""
        model = self.solver.model()
        return {
            priority: sum(w for w, var in terms if model[var] == 1)
            for priority, terms in self.objectives.items()
        }
