"""Control-style façade over the ASP pipeline (the clingo stand-in).

Typical use::

    ctl = Control()
    ctl.add('node("example").')
    ctl.load("concretize.lp")
    ctl.ground()
    result = ctl.solve()
    if result.satisfiable:
        for atom in result.model.by_predicate("attr"):
            ...
"""

from __future__ import annotations

import logging
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from ..obs import Span, trace
from .grounder import Grounder
from .optimize import Optimizer
from .parser import parse_program
from .syntax import Atom, Program, Rule
from .translate import Translator

__all__ = ["Control", "Model", "SolveResult"]

logger = logging.getLogger(__name__)


class Model:
    """A stable model: a set of ground atoms with query helpers."""

    def __init__(self, atoms: Set[Atom]):
        self.atoms = atoms
        self._by_pred: Optional[Dict[str, List[Atom]]] = None

    def by_predicate(self, predicate: str) -> List[Atom]:
        if self._by_pred is None:
            index: Dict[str, List[Atom]] = {}
            for atom in self.atoms:
                index.setdefault(atom.predicate, []).append(atom)
            self._by_pred = index
        return self._by_pred.get(predicate, [])

    def holds(self, atom: Atom) -> bool:
        return atom in self.atoms

    def __len__(self) -> int:
        return len(self.atoms)

    def __iter__(self):
        return iter(self.atoms)

    def __repr__(self):
        return f"<Model {len(self.atoms)} atoms>"


class SolveResult:
    """Outcome of :meth:`Control.solve`, with cost and timing stats."""

    def __init__(
        self,
        model: Optional[Model],
        cost: Dict[int, int],
        stats: Dict[str, float],
    ):
        self.model = model
        self.cost = cost
        self.stats = stats

    @property
    def satisfiable(self) -> bool:
        return self.model is not None

    def __repr__(self):
        status = "SAT" if self.satisfiable else "UNSAT"
        return f"<SolveResult {status} cost={self.cost}>"


class Control:
    """Accumulates program text/facts, grounds, and solves."""

    def __init__(self):
        self.program = Program()
        self._ground_program = None
        self._translator: Optional[Translator] = None
        self._ground_span: Optional[Span] = None

    # -- input -------------------------------------------------------------
    def add(self, text: str) -> None:
        """Add ASP source text to the program."""
        parse_program(text, into=self.program)

    def add_fact(self, atom: Atom) -> None:
        self.program.add_fact(atom)

    def add_facts(self, atoms: Iterable[Atom]) -> None:
        for atom in atoms:
            self.program.add_fact(atom)

    def add_rule(self, rule: Rule) -> None:
        self.program.add_rule(rule)

    def load(self, path) -> None:
        with open(path, "r", encoding="utf-8") as handle:
            self.add(handle.read())

    # -- pipeline ------------------------------------------------------------
    def ground(self) -> None:
        """Instantiate the program (must precede :meth:`solve`)."""
        with trace.span("asp.ground") as sp:
            self._ground_program = Grounder(self.program).ground()
            sp.set(**self._ground_program.stats())
        self._ground_span = sp
        logger.debug(
            "grounded in %.4fs: %s", sp.duration, self._ground_program.stats()
        )

    def use_ground_program(self, ground_program) -> None:
        """Inject an externally produced :class:`GroundProgram` (a
        ground-cache hit or an incremental re-ground); :meth:`solve`
        will skip grounding entirely and no ``asp.ground`` span opens,
        so the cached path provably spends zero ground time."""
        self._ground_program = ground_program
        self._ground_span = None

    @property
    def _ground_time(self) -> float:
        """Backward-compatible accessor: a thin read of the ground span."""
        return self._ground_span.duration if self._ground_span is not None else 0.0

    def solve(
        self,
        on_model: Optional[Callable[[Model], None]] = None,
    ) -> SolveResult:
        """Ground (if needed), translate, and find an optimal stable model."""
        if self._ground_program is None:
            self.ground()
        with trace.span("asp.translate") as translate_span:
            translator = Translator(self._ground_program)
            translate_span.set(
                atoms=len(translator.atom_var),
                vars=translator.solver.stats()["vars"],
                clauses=translator.solver.stats()["clauses"],
            )
        self._translator = translator

        with trace.span("asp.solve") as solve_span:
            optimizer = Optimizer(translator)
            callback = None
            if on_model is not None:
                callback = lambda atoms: on_model(Model(atoms))  # noqa: E731
            outcome = optimizer.optimize(on_model=callback)
            sat_stats = translator.solver.stats()
            solve_span.set(
                models=outcome.models_seen,
                decisions=sat_stats["decisions"],
                conflicts=sat_stats["conflicts"],
                loop_formulas=optimizer.finder.loop_formulas_added,
            )

        stats = {
            "ground_time": self._ground_time,
            "translate_time": translate_span.duration,
            "solve_time": solve_span.duration,
            "models_seen": outcome.models_seen,
            "loop_formulas": optimizer.finder.loop_formulas_added,
            "atoms": len(translator.atom_var),
            **{f"ground_{k}": v for k, v in self._ground_program.stats().items()},
            **{f"sat_{k}": v for k, v in sat_stats.items()},
        }
        logger.debug(
            "solved: %s models, %s conflicts, %.4fs",
            outcome.models_seen, sat_stats["conflicts"], solve_span.duration,
        )
        model = Model(outcome.model) if outcome.model is not None else None
        return SolveResult(model, outcome.cost, stats)

    # -- introspection -----------------------------------------------------
    @property
    def ground_stats(self) -> Dict[str, int]:
        if self._ground_program is None:
            return {}
        return self._ground_program.stats()
