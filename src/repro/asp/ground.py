"""Ground (variable-free) program representation.

The grounder lowers a :class:`~repro.asp.syntax.Program` into these
structures; the translator then encodes them into CNF for the CDCL core.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .syntax import Atom, Term

__all__ = ["GroundRule", "GroundChoice", "GroundChoiceElement", "GroundMinimize", "GroundProgram"]


class GroundRule:
    """``head :- pos, not neg.`` — head None means integrity constraint."""

    __slots__ = ("head", "pos", "neg")

    def __init__(
        self,
        head: Optional[Atom],
        pos: Sequence[Atom] = (),
        neg: Sequence[Atom] = (),
    ):
        self.head = head
        self.pos = tuple(pos)
        self.neg = tuple(neg)

    def __repr__(self):
        body = ", ".join(
            [repr(a) for a in self.pos] + [f"not {a!r}" for a in self.neg]
        )
        head = repr(self.head) if self.head is not None else ""
        if body:
            return f"{head} :- {body}."
        return f"{head}."


class GroundChoiceElement:
    """One element of a ground choice: the atom plus its condition."""

    __slots__ = ("atom", "cond_pos", "cond_neg")

    def __init__(
        self,
        atom: Atom,
        cond_pos: Sequence[Atom] = (),
        cond_neg: Sequence[Atom] = (),
    ):
        self.atom = atom
        self.cond_pos = tuple(cond_pos)
        self.cond_neg = tuple(cond_neg)

    def __repr__(self):
        if self.cond_pos or self.cond_neg:
            cond = ", ".join(
                [repr(a) for a in self.cond_pos]
                + [f"not {a!r}" for a in self.cond_neg]
            )
            return f"{self.atom!r} : {cond}"
        return repr(self.atom)


class GroundChoice:
    """``lo { elements } hi :- pos, not neg.``"""

    __slots__ = ("elements", "lower", "upper", "pos", "neg")

    def __init__(
        self,
        elements: Sequence[GroundChoiceElement],
        lower: Optional[int],
        upper: Optional[int],
        pos: Sequence[Atom] = (),
        neg: Sequence[Atom] = (),
    ):
        self.elements = tuple(elements)
        self.lower = lower
        self.upper = upper
        self.pos = tuple(pos)
        self.neg = tuple(neg)

    def __repr__(self):
        lo = f"{self.lower} " if self.lower is not None else ""
        hi = f" {self.upper}" if self.upper is not None else ""
        body = ", ".join(
            [repr(a) for a in self.pos] + [f"not {a!r}" for a in self.neg]
        )
        text = f"{lo}{{ {'; '.join(map(repr, self.elements))} }}{hi}"
        return f"{text} :- {body}." if body else f"{text}."


class GroundMinimize:
    """One ground ``weight@priority : body`` minimize element.

    ``terms`` disambiguate distinct elements with identical bodies (clingo
    sums weights over distinct tuples, not distinct bodies).
    """

    __slots__ = ("weight", "priority", "terms", "pos", "neg")

    def __init__(
        self,
        weight: int,
        priority: int,
        terms: Tuple[Term, ...],
        pos: Sequence[Atom] = (),
        neg: Sequence[Atom] = (),
    ):
        self.weight = weight
        self.priority = priority
        self.terms = terms
        self.pos = tuple(pos)
        self.neg = tuple(neg)

    def __repr__(self):
        body = ", ".join(
            [repr(a) for a in self.pos] + [f"not {a!r}" for a in self.neg]
        )
        return f"{self.weight}@{self.priority} : {body}"


class GroundProgram:
    """The full ground program handed to the propositional translator."""

    def __init__(self):
        self.rules: List[GroundRule] = []
        self.choices: List[GroundChoice] = []
        self.minimizes: List[GroundMinimize] = []

    def stats(self) -> dict:
        return {
            "rules": len(self.rules),
            "choices": len(self.choices),
            "minimize_elements": len(self.minimizes),
        }

    def __repr__(self):
        s = self.stats()
        return (
            f"<GroundProgram rules={s['rules']} choices={s['choices']} "
            f"minimize={s['minimize_elements']}>"
        )
