"""MockBinary: a tiny ELF-like container for simulated builds.

Real Spack patches RPATH entries and path strings inside ELF binaries
(Section 3.4).  We reproduce the observable contract with a JSON-backed
container that carries exactly the fields relocation and rewiring touch:

* a dynamic section with ``NEEDED`` (dependency sonames), ``RPATH``
  (search paths baked in at link time), and ``SONAME``;
* a symbol table of exported (``defined``) and imported (``undefined``)
  mangled names — the ABI surface of Section 2.1;
* exported opaque-type layout records (``MPI_Comm: int32`` vs
  ``ptr-struct``);
* an opaque ``path_blob`` of embedded path strings, standing in for the
  string tables real patching rewrites (including the padded-path trick
  used when a new prefix is longer than the old one).

Binaries serialize to bytes with a magic header so tests can treat them
as opaque files on disk.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

__all__ = ["MockBinary", "BinaryFormatError", "MAGIC"]

MAGIC = b"\x7fMOCKELF\x01"


class BinaryFormatError(ValueError):
    """Raised for corrupt or non-mock binary files."""


@dataclass
class MockBinary:
    """One shared library or executable produced by a simulated build."""

    soname: str
    #: sonames of the libraries this binary links against
    needed: List[str] = field(default_factory=list)
    #: embedded run-time search paths (install prefixes of dependencies)
    rpaths: List[str] = field(default_factory=list)
    #: exported (defined) mangled symbols
    defined_symbols: List[str] = field(default_factory=list)
    #: imported (undefined) symbols to be resolved from NEEDED libraries
    undefined_symbols: List[str] = field(default_factory=list)
    #: opaque-type layout descriptors this binary was compiled against
    type_layouts: Dict[str, str] = field(default_factory=dict)
    #: embedded path strings (sorted for determinism on round-trip)
    path_blob: List[str] = field(default_factory=list)
    #: provenance: dag hash of the spec this binary was built from
    built_from: str = ""

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        payload = {
            "soname": self.soname,
            "needed": self.needed,
            "rpaths": self.rpaths,
            "defined_symbols": self.defined_symbols,
            "undefined_symbols": self.undefined_symbols,
            "type_layouts": self.type_layouts,
            "path_blob": self.path_blob,
            "built_from": self.built_from,
        }
        return MAGIC + json.dumps(payload, sort_keys=True).encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "MockBinary":
        if not data.startswith(MAGIC):
            raise BinaryFormatError("not a mock binary (bad magic)")
        try:
            payload = json.loads(data[len(MAGIC):])
        except json.JSONDecodeError as e:
            raise BinaryFormatError(f"corrupt mock binary: {e}") from e
        return cls(**payload)

    def write(self, path: Path) -> None:
        Path(path).write_bytes(self.to_bytes())

    @classmethod
    def read(cls, path: Path) -> "MockBinary":
        return cls.from_bytes(Path(path).read_bytes())

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def references_prefix(self, prefix: str) -> bool:
        """Does any embedded path mention ``prefix``?

        Matches at path-component boundaries only: ``/opt/x`` is
        referenced by ``/opt/x/lib`` but not by ``/opt/xy/lib`` —
        substring matching would report false positives whenever one
        store path extends another.
        """
        for path in self.rpaths + self.path_blob:
            start = path.find(prefix)
            while start != -1:
                end = start + len(prefix)
                if end == len(path) or path[end] == "/":
                    return True
                start = path.find(prefix, start + 1)
        return False

    def copy(self) -> "MockBinary":
        return MockBinary(
            self.soname,
            list(self.needed),
            list(self.rpaths),
            list(self.defined_symbols),
            list(self.undefined_symbols),
            dict(self.type_layouts),
            list(self.path_blob),
            self.built_from,
        )

    def __repr__(self):
        return (
            f"<MockBinary {self.soname} needed={self.needed} "
            f"rpaths={len(self.rpaths)}>"
        )
