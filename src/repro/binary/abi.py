"""ABI-compatibility model (Section 2.1).

A compiled package X is ABI-compatible with a compiled package Y when:

1. X exports (defines) every symbol Y's dependents import from Y —
   mangled-name superset; and
2. every opaque type both sides expose has the *same layout descriptor*
   (the MPICH ``MPI_Comm = int32`` vs Open MPI ``MPI_Comm = ptr-struct``
   incompatibility is exactly a layout mismatch).

These checks run at "load" time (:mod:`.loader`) and in tests to verify
that splices the concretizer synthesizes are actually safe, and that
unsafe substitutions (openmpi for mpich) are caught.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .mockelf import MockBinary

__all__ = ["AbiReport", "check_abi_compatibility", "abi_compatible"]


@dataclass
class AbiReport:
    """Outcome of an ABI compatibility check."""

    compatible: bool
    missing_symbols: List[str] = field(default_factory=list)
    layout_mismatches: Dict[str, tuple] = field(default_factory=dict)

    def explain(self) -> str:
        if self.compatible:
            return "ABI compatible"
        parts = []
        if self.missing_symbols:
            parts.append(f"missing symbols: {', '.join(self.missing_symbols)}")
        for type_name, (old, new) in sorted(self.layout_mismatches.items()):
            parts.append(f"type {type_name}: layout {old!r} != {new!r}")
        return "ABI incompatible: " + "; ".join(parts)


def check_abi_compatibility(
    replacement: MockBinary, original: MockBinary
) -> AbiReport:
    """Can ``replacement`` stand in for ``original``?

    Symbol check: the replacement must define a superset of the
    original's defined symbols (dependents may import any of them).
    Layout check: every opaque type exported by both must agree.
    """
    missing = sorted(
        set(original.defined_symbols) - set(replacement.defined_symbols)
    )
    mismatches: Dict[str, tuple] = {}
    for type_name, layout in original.type_layouts.items():
        theirs = replacement.type_layouts.get(type_name)
        if theirs is not None and theirs != layout:
            mismatches[type_name] = (layout, theirs)
    return AbiReport(
        compatible=not missing and not mismatches,
        missing_symbols=missing,
        layout_mismatches=mismatches,
    )


def abi_compatible(replacement: MockBinary, original: MockBinary) -> bool:
    """Boolean shorthand for :func:`check_abi_compatibility`."""
    return check_abi_compatibility(replacement, original).compatible
