"""Rewiring: relocation generalized to splices (Section 4.2).

Relocation moves *the same* library to a new path; rewiring points a
binary at a *different but ABI-compatible* library.  The build spec of a
spliced spec tells us how the binary was originally linked; diffing the
build spec's dependencies against the spliced spec's dependencies yields
the prefix map (old dependency prefix → spliced dependency prefix) and
the soname map (old NEEDED entry → replacement soname) that the patcher
applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..spec import Spec, DEPTYPE_LINK_RUN
from .abi import AbiReport, check_abi_compatibility
from .mockelf import MockBinary
from .relocate import relocate_binary

__all__ = ["RewirePlan", "RewireError", "plan_rewire", "rewire_binary"]


class RewireError(RuntimeError):
    """Raised when a splice cannot be rewired (no build spec, or the
    replacement is ABI-incompatible and checking is enforced)."""


@dataclass
class RewirePlan:
    """The mapping a splice induces on one spliced spec's binaries."""

    spec: Spec
    build_spec: Spec
    #: old dependency node → new dependency node
    replaced: List[Tuple[Spec, Spec]] = field(default_factory=list)
    #: old install prefix → new install prefix
    prefix_map: Dict[str, str] = field(default_factory=dict)
    #: old soname → new soname (for cross-package splices)
    soname_map: Dict[str, str] = field(default_factory=dict)


def plan_rewire(
    spec: Spec,
    prefix_of: Callable[[Spec], str],
    soname_of: Optional[Callable[[Spec], str]] = None,
    old_prefix_of: Optional[Callable[[Spec], str]] = None,
) -> RewirePlan:
    """Compute the rewiring plan for a spliced spec.

    ``prefix_of`` maps a concrete spec node to its install prefix
    (usually the install database); ``old_prefix_of`` resolves where the
    *replaced* dependencies lived when the binary was built (cache
    metadata — they may never be installed locally, e.g. mpich on a
    Cray deploy target).  Dependencies are matched between the build
    spec and the spliced spec: same-name nodes whose hashes differ were
    replaced by the splice; build-spec dependencies missing from the
    spliced spec were replaced by a *different-named* package, matched
    against spliced dependencies not present in the build spec.
    """
    if not spec.spliced:
        raise RewireError(f"{spec.name} is not a spliced spec (no build spec)")
    build_spec = spec.build_spec
    if soname_of is None:
        soname_of = lambda s: f"lib{s.name}.so"  # noqa: E731
    if old_prefix_of is None:
        old_prefix_of = prefix_of

    # Only direct dependencies: a binary's NEEDED/RPATH entries reference
    # the libraries it was linked against, not their transitive closure
    # (deeper splices rewire the deeper binaries, each with its own plan).
    old_deps = {e.spec.name: e.spec for e in build_spec.edges(DEPTYPE_LINK_RUN)}
    new_deps = {e.spec.name: e.spec for e in spec.edges(DEPTYPE_LINK_RUN)}

    plan = RewirePlan(spec=spec, build_spec=build_spec)
    unmatched_old: List[Spec] = []
    for name, old in sorted(old_deps.items()):
        new = new_deps.get(name)
        if new is None:
            unmatched_old.append(old)
        elif new.dag_hash() != old.dag_hash():
            plan.replaced.append((old, new))

    unmatched_new = [
        n for name, n in sorted(new_deps.items()) if name not in old_deps
    ]
    if len(unmatched_old) != len(unmatched_new):
        raise RewireError(
            f"cannot match replaced dependencies of {spec.name}: "
            f"{[s.name for s in unmatched_old]} vs {[s.name for s in unmatched_new]}"
        )
    # Cross-package replacements: pair leftovers (deterministically by
    # name). A single splice replaces a single package, so in practice
    # there is at most one pair.
    plan.replaced.extend(zip(unmatched_old, unmatched_new))

    for old, new in plan.replaced:
        plan.prefix_map[old_prefix_of(old)] = prefix_of(new)
        old_soname, new_soname = soname_of(old), soname_of(new)
        if old_soname != new_soname:
            plan.soname_map[old_soname] = new_soname
    # unreplaced shared dependencies still need relocating when the
    # binary was built on another machine (old location → local install)
    for name, old in sorted(old_deps.items()):
        new = new_deps.get(name)
        if new is not None and new.dag_hash() == old.dag_hash():
            old_location = old_prefix_of(old)
            new_location = prefix_of(new)
            if old_location != new_location:
                plan.prefix_map[old_location] = new_location
    return plan


def rewire_binary(
    binary: MockBinary,
    plan: RewirePlan,
    check_abi: Optional[Callable[[Spec, Spec], AbiReport]] = None,
) -> MockBinary:
    """Patch one binary according to a rewire plan.

    Rewrites RPATH/path references through the relocation machinery and
    NEEDED entries through the soname map.  When ``check_abi`` is given,
    each replacement pair is verified first and an ABI-incompatible
    replacement raises :class:`RewireError` — the guard that makes the
    openmpi-for-mpich substitution fail loudly.
    """
    if check_abi is not None:
        for old, new in plan.replaced:
            report = check_abi(old, new)
            if not report.compatible:
                raise RewireError(
                    f"refusing to rewire {binary.soname}: {new.name} cannot "
                    f"replace {old.name}: {report.explain()}"
                )
    patched = relocate_binary(binary, plan.prefix_map, pad=True).binary
    patched.needed = [plan.soname_map.get(n, n) for n in patched.needed]
    return patched
