"""Binary relocation: rewrite install prefixes inside binaries.

Spack installs everything under a user prefix and embeds dependency
locations as RPATHs; installing a cached binary elsewhere requires
patching every occurrence of the old prefixes (Section 3.4).  Two
regimes, as in Spack:

* new prefix **shorter or equal**: plain string replacement, padded
  with ``/`` repetition to preserve blob lengths (binary patching may
  not change string-table sizes);
* new prefix **longer**: the ``patchelf``-style path applies — we model
  it as an explicit "lengthen" rewrite that is only legal on fields
  that tolerate resizing (rpaths and path_blob entries here), counted
  separately so tests can assert which regime ran.

Relocation is **single-pass**: all old prefixes are compiled into one
longest-first alternation regex (cached per prefix map), so each
payload string is scanned once regardless of how many prefixes the map
carries.  At 20k-spec cache scale a payload used to be scanned once
per prefix; the per-prefix reference loop survives as
``_replace_prefix`` so the equivalence property tests can pin the
combined regex to the old semantics byte for byte.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Set, Tuple

from ..obs import metrics
from .mockelf import MockBinary

__all__ = [
    "PrefixRewriter",
    "RelocationResult",
    "relocate_binary",
    "relocate_text",
    "pad_prefix",
]


@dataclass
class RelocationResult:
    """Bookkeeping for one binary relocation."""

    binary: MockBinary
    replacements: int = 0
    lengthened: int = 0
    padded: int = 0


def pad_prefix(new_prefix: str, old_length: int) -> str:
    """Pad a shorter prefix to ``old_length`` with self-referential
    ``/./`` segments (the classic binary-patching trick: ``/opt/x`` and
    ``/opt/x/././.`` name the same directory)."""
    if len(new_prefix) > old_length:
        raise ValueError("cannot pad a longer prefix")
    padded = new_prefix
    while len(padded) + 2 <= old_length:
        padded += "/."
    # final odd byte: a trailing slash also preserves the path
    if len(padded) < old_length:
        padded += "/"
    return padded


#: characters that may continue a path component; an occurrence of an
#: old prefix immediately followed by one of these is part of a longer
#: name (``/opt/x`` inside ``/opt/xy``), not a reference to the prefix
_PATH_COMPONENT_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)

#: the same set as a regex class, for the combined pattern's boundary
#: lookahead (negative: the char after a match must NOT continue a name)
_BOUNDARY_LOOKAHEAD = r"(?![A-Za-z0-9._\-])"


def _replace_prefix(text: str, old: str, new: str) -> "Tuple[str, int]":
    """Replace occurrences of ``old`` that end at a path-component
    boundary (end of string, ``/``, or a separator like ``:``).

    This is the legacy one-prefix-per-pass reference implementation;
    production relocation goes through :class:`PrefixRewriter`, and the
    equivalence tests assert both produce identical bytes.
    """
    pieces = []
    start = 0
    count = 0
    while True:
        found = text.find(old, start)
        if found == -1:
            pieces.append(text[start:])
            return "".join(pieces), count
        end = found + len(old)
        if end == len(text) or text[end] not in _PATH_COMPONENT_CHARS:
            pieces.append(text[start:found])
            pieces.append(new)
            count += 1
            start = end
        else:
            pieces.append(text[start:found + 1])
            start = found + 1


class PrefixRewriter:
    """All prefixes of one relocation map compiled into a single regex.

    The alternation is ordered longest-first, which under Python's
    leftmost-then-first-alternative matching reproduces the legacy
    loop's "longest prefix wins at any position" semantics; the
    trailing negative lookahead reproduces its path-component boundary
    rule.  One :meth:`rewrite` call scans the string exactly once, no
    matter how many prefixes the map holds.
    """

    __slots__ = ("padded_prefixes", "_pattern", "_mapping")

    def __init__(self, prefix_map: Dict[str, str], pad: bool = False):
        #: old prefix -> replacement actually substituted (maybe padded)
        self._mapping: Dict[str, str] = {}
        #: old prefixes whose replacement was length-padded
        self.padded_prefixes: Set[str] = set()
        for old, new in prefix_map.items():
            if pad and len(new) < len(old):
                self._mapping[old] = pad_prefix(new, len(old))
                self.padded_prefixes.add(old)
            else:
                self._mapping[old] = new
        ordered = sorted(self._mapping, key=len, reverse=True)
        if ordered:
            alternation = "|".join(re.escape(old) for old in ordered)
            self._pattern = re.compile(
                f"({alternation}){_BOUNDARY_LOOKAHEAD}"
            )
        else:
            self._pattern = None

    def rewrite(self, text: str) -> "Tuple[str, Dict[str, int]]":
        """Rewrite every prefix occurrence in one pass.

        Returns ``(new_text, hits)`` where ``hits`` counts matches per
        old prefix (the counters tests assert on).
        """
        if self._pattern is None:
            return text, {}
        hits: Dict[str, int] = {}

        def substitute(match: "re.Match[str]") -> str:
            old = match.group(1)
            hits[old] = hits.get(old, 0) + 1
            return self._mapping[old]

        return self._pattern.sub(substitute, text), hits


@lru_cache(maxsize=128)
def _cached_rewriter(items: Tuple[Tuple[str, str], ...], pad: bool) -> PrefixRewriter:
    return PrefixRewriter(dict(items), pad=pad)


def _rewriter_for(prefix_map: Dict[str, str], pad: bool) -> PrefixRewriter:
    """Get a compiled rewriter, cached per map: extraction relocates
    every file of a payload with the same map, so the regex compiles
    once per cache entry rather than once per file."""
    return _cached_rewriter(tuple(sorted(prefix_map.items())), pad)


def relocate_text(text: str, prefix_map: Dict[str, str]) -> str:
    """Rewrite every occurrence of the old prefixes (longest first, so
    nested prefixes do not shadow each other) in a single pass."""
    rewritten, _ = _rewriter_for(prefix_map, pad=False).rewrite(text)
    return rewritten


def relocate_binary(
    binary: MockBinary,
    prefix_map: Dict[str, str],
    pad: bool = True,
) -> RelocationResult:
    """Return a relocated copy of ``binary``.

    ``prefix_map`` maps old install prefixes to new locations.  With
    ``pad=True``, same-directory padding keeps replacement strings the
    exact length of the originals whenever the new prefix is shorter
    (simple patching logic); longer prefixes take the patchelf-style
    lengthening path and are counted in ``lengthened``.
    """
    out = binary.copy()
    result = RelocationResult(out)
    rewriter = _rewriter_for(prefix_map, pad)

    def rewrite(path: str) -> str:
        rewritten, hits = rewriter.rewrite(path)
        for old in hits:
            if old in rewriter.padded_prefixes:
                result.padded += 1
            elif len(prefix_map[old]) > len(old):
                result.lengthened += 1
            result.replacements += 1
        return rewritten

    out.rpaths = [rewrite(p) for p in out.rpaths]
    out.path_blob = [rewrite(p) for p in out.path_blob]
    metrics.inc("relocate.binaries")
    metrics.inc("relocate.strings_scanned", len(out.rpaths) + len(out.path_blob))
    metrics.inc("relocate.prefixes_replaced", result.replacements)
    return result
