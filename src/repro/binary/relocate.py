"""Binary relocation: rewrite install prefixes inside binaries.

Spack installs everything under a user prefix and embeds dependency
locations as RPATHs; installing a cached binary elsewhere requires
patching every occurrence of the old prefixes (Section 3.4).  Two
regimes, as in Spack:

* new prefix **shorter or equal**: plain string replacement, padded
  with ``/`` repetition to preserve blob lengths (binary patching may
  not change string-table sizes);
* new prefix **longer**: the ``patchelf``-style path applies — we model
  it as an explicit "lengthen" rewrite that is only legal on fields
  that tolerate resizing (rpaths and path_blob entries here), counted
  separately so tests can assert which regime ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..obs import metrics
from .mockelf import MockBinary

__all__ = ["RelocationResult", "relocate_binary", "relocate_text", "pad_prefix"]


@dataclass
class RelocationResult:
    """Bookkeeping for one binary relocation."""

    binary: MockBinary
    replacements: int = 0
    lengthened: int = 0
    padded: int = 0


def pad_prefix(new_prefix: str, old_length: int) -> str:
    """Pad a shorter prefix to ``old_length`` with self-referential
    ``/./`` segments (the classic binary-patching trick: ``/opt/x`` and
    ``/opt/x/././.`` name the same directory)."""
    if len(new_prefix) > old_length:
        raise ValueError("cannot pad a longer prefix")
    padded = new_prefix
    while len(padded) + 2 <= old_length:
        padded += "/."
    # final odd byte: a trailing slash also preserves the path
    if len(padded) < old_length:
        padded += "/"
    return padded


#: characters that may continue a path component; an occurrence of an
#: old prefix immediately followed by one of these is part of a longer
#: name (``/opt/x`` inside ``/opt/xy``), not a reference to the prefix
_PATH_COMPONENT_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


def _replace_prefix(text: str, old: str, new: str) -> "Tuple[str, int]":
    """Replace occurrences of ``old`` that end at a path-component
    boundary (end of string, ``/``, or a separator like ``:``)."""
    pieces = []
    start = 0
    count = 0
    while True:
        found = text.find(old, start)
        if found == -1:
            pieces.append(text[start:])
            return "".join(pieces), count
        end = found + len(old)
        if end == len(text) or text[end] not in _PATH_COMPONENT_CHARS:
            pieces.append(text[start:found])
            pieces.append(new)
            count += 1
            start = end
        else:
            pieces.append(text[start:found + 1])
            start = found + 1


def relocate_text(text: str, prefix_map: Dict[str, str]) -> str:
    """Rewrite every occurrence of the old prefixes (longest first, so
    nested prefixes do not shadow each other)."""
    for old in sorted(prefix_map, key=len, reverse=True):
        text, _ = _replace_prefix(text, old, prefix_map[old])
    return text


def relocate_binary(
    binary: MockBinary,
    prefix_map: Dict[str, str],
    pad: bool = True,
) -> RelocationResult:
    """Return a relocated copy of ``binary``.

    ``prefix_map`` maps old install prefixes to new locations.  With
    ``pad=True``, same-directory padding keeps replacement strings the
    exact length of the originals whenever the new prefix is shorter
    (simple patching logic); longer prefixes take the patchelf-style
    lengthening path and are counted in ``lengthened``.
    """
    out = binary.copy()
    result = RelocationResult(out)

    def rewrite(path: str) -> str:
        for old in sorted(prefix_map, key=len, reverse=True):
            new = prefix_map[old]
            padded_now = False
            if pad and len(new) < len(old):
                new = pad_prefix(new, len(old))
                padded_now = True
            path, count = _replace_prefix(path, old, new)
            if count:
                if padded_now:
                    result.padded += 1
                elif len(new) > len(old):
                    result.lengthened += 1
                result.replacements += 1
        return path

    out.rpaths = [rewrite(p) for p in out.rpaths]
    out.path_blob = [rewrite(p) for p in out.path_blob]
    metrics.inc("relocate.binaries")
    metrics.inc("relocate.strings_scanned", len(out.rpaths) + len(out.path_blob))
    metrics.inc("relocate.prefixes_replaced", result.replacements)
    return result
