"""Automatic ABI discovery (the paper's future work, Section 8).

    "Currently, ABI compatibility must be specified by package
    developers manually adding can_splice to their package classes.
    In the future, we will develop methods for automating ABI
    discovery for the Spack ecosystem."

This module implements that extension over our ABI model: compare the
exported surface (mangled symbols + opaque type layouts) of package
configurations and propose the ``can_splice`` directives a maintainer
would otherwise write by hand.  Two modes:

* :func:`discover_provider_splices` — *static*: for each virtual
  interface, compare every provider pair declared in a repository;
* :func:`discover_binary_splices` — *dynamic*: compare actual built
  artifacts (:class:`MockBinary`), the analogue of running ``libabigail``
  over a binary cache.

Suggestions are conservative: a replacement must export a superset of
symbols AND agree on every shared opaque-type layout — exactly the
:func:`~repro.binary.abi.check_abi_compatibility` criterion, so every
suggestion is safe by construction of the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..package.directives import CanSpliceDecl
from ..package.repository import Repository
from ..spec import Spec, parse_one
from .abi import check_abi_compatibility
from .mockelf import MockBinary

__all__ = [
    "SpliceSuggestion",
    "discover_provider_splices",
    "discover_binary_splices",
    "apply_suggestions",
]


@dataclass(frozen=True)
class SpliceSuggestion:
    """A proposed ``can_splice`` directive."""

    #: package that would carry the directive (the replacement)
    splicer: str
    #: the target constraint, e.g. ``"mpich@3.4.3"``
    target: str
    #: optional constraint on the splicer (the ``when`` spec)
    when: Optional[str]
    #: human-readable justification
    reason: str

    def directive_source(self) -> str:
        """The package.py line a maintainer would paste."""
        if self.when:
            return f'can_splice("{self.target}", when="{self.when}")'
        return f'can_splice("{self.target}")'


def _surface_of(pkg_cls, spec: Spec) -> MockBinary:
    """The ABI surface of one package configuration as a pseudo-binary."""
    return MockBinary(
        soname=f"lib{pkg_cls.name}.so",
        defined_symbols=list(pkg_cls.exported_symbols(spec)),
        type_layouts=dict(pkg_cls.exported_type_layouts(spec)),
    )


def _pin(repo: Repository, name: str, version) -> Spec:
    spec = parse_one(f"{name}@={version}")
    return spec


def discover_provider_splices(
    repo: Repository,
    virtual: Optional[str] = None,
    include_existing: bool = False,
) -> List[SpliceSuggestion]:
    """Propose cross-provider splices for a virtual interface.

    For every ordered provider pair (replacement, target) of each
    virtual, checks whether the replacement's newest configuration is
    ABI-compatible with each declared target version.  Suggestions
    already covered by an existing ``can_splice`` are skipped unless
    ``include_existing``.
    """
    suggestions: List[SpliceSuggestion] = []
    virtuals = [virtual] if virtual is not None else repo.virtual_names()
    for v in virtuals:
        providers = repo.providers(v)
        for replacement_name in providers:
            replacement_cls = repo.get(replacement_name)
            if not replacement_cls.declared_versions():
                continue
            replacement_spec = _pin(
                repo, replacement_name, replacement_cls.preferred_version()
            )
            replacement_surface = _surface_of(replacement_cls, replacement_spec)
            for target_name in providers:
                if target_name == replacement_name:
                    continue
                target_cls = repo.get(target_name)
                for target_version in target_cls.declared_versions():
                    target_spec = _pin(repo, target_name, target_version)
                    report = check_abi_compatibility(
                        replacement_surface, _surface_of(target_cls, target_spec)
                    )
                    if not report.compatible:
                        continue
                    target_text = f"{target_name}@{target_version}"
                    if not include_existing and _already_declared(
                        replacement_cls, target_text
                    ):
                        continue
                    suggestions.append(
                        SpliceSuggestion(
                            splicer=replacement_name,
                            target=target_text,
                            when=None,
                            reason=(
                                f"{replacement_name} exports all "
                                f"{len(replacement_surface.defined_symbols)} "
                                f"symbols of {target_text} with matching "
                                "opaque-type layouts"
                            ),
                        )
                    )
    return suggestions


def _already_declared(pkg_cls, target_text: str) -> bool:
    target = parse_one(target_text)
    for decl in pkg_cls.can_splice_decls:
        if decl.target.name == target.name and target.versions.satisfies(
            decl.target.versions
        ):
            return True
    return False


def discover_binary_splices(
    binaries: Dict[str, MockBinary],
) -> List[SpliceSuggestion]:
    """Propose splices by inspecting built artifacts directly.

    ``binaries`` maps a label (e.g. ``"mpich@3.4.3"``) to the binary it
    produced.  Every ordered pair is checked; compatible pairs become
    suggestions.  This is the buildcache-scanning analogue of running an
    ABI checker over compiled libraries.
    """
    suggestions: List[SpliceSuggestion] = []
    for replacement_label, replacement in sorted(binaries.items()):
        for target_label, target in sorted(binaries.items()):
            if replacement_label == target_label:
                continue
            report = check_abi_compatibility(replacement, target)
            if report.compatible:
                splicer = parse_one(replacement_label)
                when = None
                if not splicer.versions.is_any:
                    when = f"@{splicer.versions}"
                suggestions.append(
                    SpliceSuggestion(
                        splicer=splicer.name,
                        target=target_label,
                        when=when,
                        reason=(
                            f"binary {replacement.soname} covers "
                            f"{target.soname}'s exported surface"
                        ),
                    )
                )
    return suggestions


def apply_suggestions(
    repo: Repository, suggestions: Sequence[SpliceSuggestion]
) -> int:
    """Register suggested directives on the packages (in-memory).

    Returns how many were applied.  Safe to run repeatedly; existing
    declarations are not duplicated.
    """
    applied = 0
    for suggestion in suggestions:
        pkg_cls = repo.get(suggestion.splicer)
        if _already_declared(pkg_cls, suggestion.target):
            continue
        decl = CanSpliceDecl(
            target=parse_one(suggestion.target),
            when=parse_one(suggestion.when) if suggestion.when else None,
        )
        pkg_cls.can_splice_decls = list(pkg_cls.can_splice_decls) + [decl]
        applied += 1
    return applied
