"""Mock binary substrate: ELF-like containers, ABI model, relocation,
rewiring, and a dynamic-loader simulation."""

from .mockelf import MockBinary, BinaryFormatError, MAGIC
from .abi import AbiReport, check_abi_compatibility, abi_compatible
from .relocate import RelocationResult, relocate_binary, relocate_text, pad_prefix
from .rewire import RewirePlan, RewireError, plan_rewire, rewire_binary
from .loader import Loader, LoadResult, LoadError

__all__ = [
    "MockBinary",
    "BinaryFormatError",
    "MAGIC",
    "AbiReport",
    "check_abi_compatibility",
    "abi_compatible",
    "RelocationResult",
    "relocate_binary",
    "relocate_text",
    "pad_prefix",
    "RewirePlan",
    "RewireError",
    "plan_rewire",
    "rewire_binary",
    "Loader",
    "LoadResult",
    "LoadError",
]
