"""A dynamic-loader simulation: resolve NEEDED entries through RPATHs.

This is the "does it actually run" check for installed and rewired
binaries: every NEEDED soname must be found under some RPATH directory,
every undefined symbol must be defined by a resolved library, and
opaque-type layouts must agree between importer and exporter —
otherwise the load fails exactly the way a real mixed-MPI deployment
crashes at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from .mockelf import MockBinary, BinaryFormatError

__all__ = ["Loader", "LoadResult", "LoadError"]


class LoadError(RuntimeError):
    """Raised by :meth:`Loader.load_or_raise` on resolution failure."""


@dataclass
class LoadResult:
    """Outcome of loading one binary and its transitive dependencies."""

    ok: bool
    resolved: Dict[str, str] = field(default_factory=dict)
    missing_libraries: List[str] = field(default_factory=list)
    unresolved_symbols: List[str] = field(default_factory=list)
    layout_conflicts: List[str] = field(default_factory=list)

    def explain(self) -> str:
        if self.ok:
            return f"loaded ({len(self.resolved)} libraries)"
        parts = []
        if self.missing_libraries:
            parts.append(f"missing libraries: {', '.join(self.missing_libraries)}")
        if self.unresolved_symbols:
            parts.append(
                f"unresolved symbols: {', '.join(self.unresolved_symbols)}"
            )
        if self.layout_conflicts:
            parts.append(f"layout conflicts: {', '.join(self.layout_conflicts)}")
        return "load failed: " + "; ".join(parts)


class Loader:
    """Resolves mock binaries like ``ld.so`` resolves real ones."""

    def __init__(self):
        #: filesystem scan cache: directory → {soname: path}
        self._dir_cache: Dict[str, Dict[str, str]] = {}

    def _scan(self, directory: str) -> Dict[str, str]:
        cached = self._dir_cache.get(directory)
        if cached is not None:
            return cached
        found: Dict[str, str] = {}
        root = Path(directory)
        if root.is_dir():
            for path in sorted(root.rglob("*")):
                if not path.is_file():
                    continue
                try:
                    binary = MockBinary.read(path)
                except (BinaryFormatError, OSError):
                    continue
                found.setdefault(binary.soname, str(path))
        self._dir_cache[directory] = found
        return found

    def resolve(self, soname: str, rpaths: List[str]) -> Optional[str]:
        """First RPATH directory providing ``soname`` wins, like ld.so."""
        for rpath in rpaths:
            # normalize padded prefixes (/x/./. → /x)
            normalized = str(Path(rpath).resolve()) if Path(rpath).exists() else rpath
            found = self._scan(normalized).get(soname)
            if found is not None:
                return found
        return None

    def load(self, path: str) -> LoadResult:
        """Load a binary, resolving its full NEEDED closure."""
        result = LoadResult(ok=True)
        try:
            root = MockBinary.read(Path(path))
        except (BinaryFormatError, OSError) as e:
            result.ok = False
            result.missing_libraries.append(f"{path} ({e})")
            return result

        loaded: Dict[str, MockBinary] = {root.soname: root}
        result.resolved[root.soname] = str(path)
        queue = [root]
        while queue:
            current = queue.pop()
            for soname in current.needed:
                if soname in loaded:
                    continue
                found = self.resolve(soname, current.rpaths)
                if found is None:
                    result.ok = False
                    result.missing_libraries.append(soname)
                    continue
                dep = MockBinary.read(Path(found))
                loaded[soname] = dep
                result.resolved[soname] = found
                queue.append(dep)

        # symbol resolution: every undefined symbol must be defined
        all_defined = {
            sym for binary in loaded.values() for sym in binary.defined_symbols
        }
        for binary in loaded.values():
            for sym in binary.undefined_symbols:
                if sym not in all_defined:
                    result.ok = False
                    result.unresolved_symbols.append(f"{binary.soname}:{sym}")

        # opaque-type layouts must be consistent across the load set
        layouts: Dict[str, tuple] = {}
        for binary in sorted(loaded.values(), key=lambda b: b.soname):
            for type_name, layout in binary.type_layouts.items():
                seen = layouts.get(type_name)
                if seen is None:
                    layouts[type_name] = (layout, binary.soname)
                elif seen[0] != layout:
                    result.ok = False
                    result.layout_conflicts.append(
                        f"{type_name}: {seen[1]}={seen[0]} vs "
                        f"{binary.soname}={layout}"
                    )
        return result

    def load_or_raise(self, path: str) -> LoadResult:
        result = self.load(path)
        if not result.ok:
            raise LoadError(result.explain())
        return result
