"""The Spec data model: recursive build-configuration descriptions.

A :class:`Spec` describes a package configuration: name, version
constraint, variant settings, target OS and microarchitecture, and the
specs of its dependencies.  Dependencies form a directed acyclic
multigraph with two edge sets — ``build`` and ``link-run`` (Section 3.1 of
the paper).

Key operations:

* ``satisfies`` / ``intersects`` / ``constrain`` — the constraint lattice
  used by the packaging DSL and the concretizer.
* ``dag_hash`` — content hash over the full DAG, giving cheap equality on
  concrete specs.
* ``splice`` — the Figure-2 mechanics: replace a dependency of a concrete
  spec with an ABI-compatible substitute, transitively or intransitively,
  recording *build provenance* via ``build_spec`` and dropping build-only
  dependencies from rewired nodes.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .variant import VariantMap, VariantError
from .version import VersionList, any_version

__all__ = [
    "Spec",
    "DependencySpec",
    "SpecError",
    "UnsatisfiableSpecError",
    "DEPTYPE_BUILD",
    "DEPTYPE_LINK_RUN",
    "ALL_DEPTYPES",
]

DEPTYPE_BUILD = "build"
DEPTYPE_LINK_RUN = "link-run"
ALL_DEPTYPES = (DEPTYPE_BUILD, DEPTYPE_LINK_RUN)


class SpecError(ValueError):
    """Base error for malformed specs or invalid spec operations."""


class UnsatisfiableSpecError(SpecError):
    """Raised when constraining a spec with an incompatible constraint."""


class DependencySpec:
    """A labeled edge in the spec multigraph: parent depends on ``spec``."""

    __slots__ = ("spec", "deptypes", "virtual")

    def __init__(
        self,
        spec: "Spec",
        deptypes: Sequence[str] = (DEPTYPE_LINK_RUN,),
        virtual: Optional[str] = None,
    ):
        for dt in deptypes:
            if dt not in ALL_DEPTYPES:
                raise SpecError(f"unknown dependency type: {dt!r}")
        self.spec = spec
        self.deptypes = frozenset(deptypes)
        #: the virtual package name this edge satisfies, if any (e.g. "mpi")
        self.virtual = virtual

    def copy(self, spec: Optional["Spec"] = None) -> "DependencySpec":
        """Clone the edge, optionally substituting the child spec."""
        return DependencySpec(
            spec if spec is not None else self.spec.copy(),
            tuple(self.deptypes),
            self.virtual,
        )

    def __repr__(self) -> str:
        return f"DependencySpec({self.spec.name!r}, {sorted(self.deptypes)!r})"


class Spec:
    """A (possibly abstract) package configuration and its dependency DAG."""

    def __init__(
        self,
        name: Optional[str] = None,
        versions: Optional[VersionList] = None,
        variants: Optional[VariantMap] = None,
        os: Optional[str] = None,
        target: Optional[str] = None,
        namespace: str = "builtin",
    ):
        #: package name; None for anonymous constraint specs
        self.name = name
        self.namespace = namespace
        self.versions: VersionList = versions if versions is not None else any_version()
        self.variants: VariantMap = variants if variants is not None else VariantMap()
        self.os = os
        self.target = target
        #: externally installed package (e.g. vendor MPI); not built by us
        self.external: bool = False
        self.external_prefix: Optional[str] = None
        #: user-requested DAG-hash prefix (the ``name/abc123`` syntax);
        #: constrains concretization to one already-built spec
        self.abstract_hash: Optional[str] = None
        #: dependency edges keyed by child package name
        self._dependencies: Dict[str, DependencySpec] = {}
        #: provenance pointer for spliced specs (Section 4.1); None otherwise
        self.build_spec: Optional["Spec"] = None
        self._concrete: bool = False
        self._hash: Optional[str] = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_string(text: str) -> "Spec":
        """Parse spec syntax (Table 1).  Defined here for convenience."""
        from .parser import parse_one

        return parse_one(text)

    def add_dependency(
        self,
        child: "Spec",
        deptypes: Sequence[str] = (DEPTYPE_LINK_RUN,),
        virtual: Optional[str] = None,
    ) -> None:
        """Attach ``child`` as a dependency, merging edge types if present."""
        if child.name is None:
            raise SpecError("cannot depend on an anonymous spec")
        existing = self._dependencies.get(child.name)
        if existing is not None:
            existing.spec.constrain(child)
            merged = existing.deptypes | frozenset(deptypes)
            self._dependencies[child.name] = DependencySpec(
                existing.spec, tuple(merged), existing.virtual or virtual
            )
        else:
            self._dependencies[child.name] = DependencySpec(
                child, tuple(deptypes), virtual
            )
        self._invalidate_hash()

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def concrete(self) -> bool:
        """True once every attribute of every node is pinned."""
        return self._concrete

    @property
    def spliced(self) -> bool:
        """Only spliced specs carry a build spec (Section 4.2)."""
        return self.build_spec is not None

    @property
    def version(self):
        """The pinned Version; raises if the spec has a non-concrete range."""
        v = self.versions.concrete
        if v is None:
            raise SpecError(f"spec {self} has no concrete version")
        return v

    def dependencies(
        self, deptype: Optional[str] = None
    ) -> List["Spec"]:
        """Direct dependencies, optionally filtered by edge type."""
        out = []
        for edge in self._dependencies.values():
            if deptype is None or deptype in edge.deptypes:
                out.append(edge.spec)
        return sorted(out, key=lambda s: s.name or "")

    def edges(self, deptype: Optional[str] = None) -> List[DependencySpec]:
        """Direct dependency edges, sorted by child name."""
        return [
            e
            for _, e in sorted(self._dependencies.items())
            if deptype is None or deptype in e.deptypes
        ]

    def dependency_edge(self, name: str) -> Optional[DependencySpec]:
        """The direct edge to ``name``, or None."""
        return self._dependencies.get(name)

    def traverse(
        self,
        order: str = "pre",
        deptype: Optional[str] = None,
        root: bool = True,
        _visited: Optional[set] = None,
    ) -> Iterator["Spec"]:
        """DFS over the DAG, deduplicated by node identity/name."""
        if _visited is None:
            _visited = set()
        key = id(self)
        if key in _visited:
            return
        _visited.add(key)
        if root and order == "pre":
            yield self
        for edge in self.edges(deptype):
            yield from edge.spec.traverse(order, deptype, True, _visited)
        if root and order == "post":
            yield self

    def __getitem__(self, name: str) -> "Spec":
        """Find the dependency node with ``name`` anywhere in the DAG."""
        for node in self.traverse():
            if node.name == name:
                return node
        raise KeyError(name)

    def __contains__(self, item: Union[str, "Spec"]) -> bool:
        if isinstance(item, Spec):
            return any(node.satisfies(item) for node in self.traverse())
        return any(node.name == item for node in self.traverse())

    # ------------------------------------------------------------------
    # constraint lattice
    # ------------------------------------------------------------------
    def _node_satisfies(self, other: "Spec") -> bool:
        """Node-local satisfaction (ignores dependencies)."""
        if other.name is not None and self.name != other.name:
            return False
        if not self.versions.satisfies(other.versions):
            return False
        if not self.variants.satisfies(other.variants):
            return False
        if other.os is not None and self.os != other.os:
            return False
        if other.target is not None and self.target != other.target:
            return False
        if other.abstract_hash is not None and not self.dag_hash().startswith(
            other.abstract_hash
        ):
            return False
        return True

    def satisfies(self, other: Union[str, "Spec"]) -> bool:
        """True if this spec meets every constraint expressed by ``other``.

        Dependency constraints in ``other`` (written with ``^``) may match
        *anywhere* in this spec's DAG, mirroring Spack's semantics.
        """
        if isinstance(other, str):
            other = Spec.from_string(other)
        if not self._node_satisfies(other):
            return False
        for dep_constraint in other.dependencies():
            candidates = [
                n for n in self.traverse(root=False) if n.name == dep_constraint.name
            ]
            if not candidates:
                # An abstract spec without the dependency cannot *prove*
                # satisfaction; a concrete one has a complete DAG.
                return False
            if not any(c.satisfies(dep_constraint) for c in candidates):
                return False
        return True

    def intersects(self, other: Union[str, "Spec"]) -> bool:
        """True if some concrete spec could satisfy both constraints."""
        if isinstance(other, str):
            other = Spec.from_string(other)
        if (
            other.name is not None
            and self.name is not None
            and self.name != other.name
        ):
            return False
        if not self.versions.intersects(other.versions):
            return False
        if not self.variants.intersects(other.variants):
            return False
        if other.os is not None and self.os is not None and self.os != other.os:
            return False
        if (
            other.target is not None
            and self.target is not None
            and self.target != other.target
        ):
            return False
        for dep in other.dependencies():
            mine = self._find_node(dep.name)
            if mine is not None and not mine.intersects(dep):
                return False
        # and the mirror image, so intersects stays symmetric: our own
        # dependency constraints must not contradict other's DAG either
        for dep in self.dependencies():
            theirs = other._find_node(dep.name)
            if theirs is not None and not theirs.intersects(dep):
                return False
        return True

    def constrain(self, other: Union[str, "Spec"]) -> bool:
        """Merge ``other``'s constraints into this spec (in place).

        Returns True if this spec changed.  Raises
        :class:`UnsatisfiableSpecError` if the constraints conflict.
        """
        if isinstance(other, str):
            other = Spec.from_string(other)
        if self._concrete:
            raise SpecError("cannot constrain a concrete spec")
        if not self.intersects(other):
            raise UnsatisfiableSpecError(f"{self} does not intersect {other}")
        changed = False
        if self.name is None and other.name is not None:
            self.name = other.name
            changed = True
        merged_versions = self.versions.intersection(other.versions)
        if not merged_versions:
            raise UnsatisfiableSpecError(
                f"empty version intersection: {self.versions} & {other.versions}"
            )
        if merged_versions != self.versions:
            self.versions = merged_versions
            changed = True
        try:
            changed |= self.variants.constrain(other.variants)
        except VariantError as e:
            raise UnsatisfiableSpecError(str(e)) from e
        for attr in ("os", "target", "abstract_hash"):
            theirs = getattr(other, attr)
            if theirs is not None:
                mine = getattr(self, attr)
                if mine is None:
                    setattr(self, attr, theirs)
                    changed = True
                elif mine != theirs:
                    raise UnsatisfiableSpecError(
                        f"conflicting {attr}: {mine!r} vs {theirs!r}"
                    )
        for edge in other.edges():
            mine = self._find_node(edge.spec.name)
            if mine is None:
                self.add_dependency(edge.spec.copy(), tuple(edge.deptypes), edge.virtual)
                changed = True
            else:
                changed |= mine.constrain(edge.spec)
        if changed:
            self._invalidate_hash()
        return changed

    def _find_node(self, name: str) -> Optional["Spec"]:
        for node in self.traverse():
            if node.name == name:
                return node
        return None

    # ------------------------------------------------------------------
    # hashing and equality
    # ------------------------------------------------------------------
    def _invalidate_hash(self) -> None:
        self._hash = None

    def node_dict(self) -> dict:
        """Canonical JSON-able description of this node (not its deps)."""
        return {
            "name": self.name,
            "namespace": self.namespace,
            "versions": str(self.versions),
            "variants": {v.name: v.value for _, v in self.variants.items()},
            "os": self.os,
            "target": self.target,
            "external": self.external,
        }

    def dag_hash(self, length: int = 32) -> str:
        """Content hash over the node and its full dependency DAG.

        Spliced specs hash differently from their build specs because the
        ``build_spec`` pointer participates in the hash — two DAGs that
        *look* identical but were produced differently stay distinct,
        preserving provenance (Section 4.1).
        """
        if self._hash is None:
            record = self.node_dict()
            record["deps"] = [
                (e.spec.name, e.spec.dag_hash(), sorted(e.deptypes))
                for e in self.edges()
            ]
            if self.build_spec is not None:
                record["build_spec"] = self.build_spec.dag_hash()
            blob = json.dumps(record, sort_keys=True).encode()
            self._hash = hashlib.sha256(blob).hexdigest()
        return self._hash[:length]

    def __eq__(self, other) -> bool:
        if not isinstance(other, Spec):
            return NotImplemented
        return self.dag_hash() == other.dag_hash()

    def __hash__(self) -> int:
        return hash(self.dag_hash())

    # ------------------------------------------------------------------
    # copying and concreteness
    # ------------------------------------------------------------------
    def copy(self, deps: bool = True) -> "Spec":
        """Deep copy; shares nothing mutable with the original."""
        new = Spec(
            self.name,
            VersionList(list(self.versions.constraints)),
            self.variants.copy(),
            self.os,
            self.target,
            self.namespace,
        )
        new.external = self.external
        new.external_prefix = self.external_prefix
        new.abstract_hash = self.abstract_hash
        new._concrete = self._concrete
        new.build_spec = self.build_spec  # provenance is shared, not copied
        if deps:
            # Preserve DAG sharing: copy each distinct node once.
            memo: Dict[int, Spec] = {}
            new._dependencies = {
                name: edge.copy(_copy_node(edge.spec, memo))
                for name, edge in self._dependencies.items()
            }
        return new

    def _mark_concrete(self, value: bool = True) -> None:
        for node in self.traverse():
            node._concrete = value
            node._invalidate_hash()

    def validate_concrete(self) -> None:
        """Check all attributes are pinned; raise SpecError otherwise."""
        for node in self.traverse():
            problems = []
            if node.name is None:
                problems.append("name")
            if node.versions.concrete is None:
                problems.append("version")
            if node.os is None:
                problems.append("os")
            if node.target is None:
                problems.append("target")
            if problems:
                raise SpecError(
                    f"spec node {node} is not concrete: missing {', '.join(problems)}"
                )

    # ------------------------------------------------------------------
    # splicing (Section 4)
    # ------------------------------------------------------------------
    def splice(
        self,
        other: "Spec",
        transitive: bool = True,
        replace: Optional[str] = None,
    ) -> "Spec":
        """Replace a dependency of this concrete spec with ``other``.

        ``other`` must be concrete (it is an already-built binary).  By
        default the node replaced is the one named ``other.name``; pass
        ``replace`` when the names differ (cross-package splices declared
        with ``can_splice("example-ng...", when=...)``).

        *Transitive* splices (the default) bring in ``other``'s entire
        link-run subdag: any dependency shared between this spec and
        ``other`` resolves to **other's** version.  *Intransitive* splices
        keep **this spec's** versions of shared dependencies, re-pointing
        ``other`` at them (Figure 2, red background).

        Every node whose dependency hashes changed becomes a *spliced
        node*: it keeps package attributes but gains a ``build_spec``
        pointer to the original node and drops its build-only dependency
        edges (they describe how the binary was produced, which did not
        change — the build spec retains them).

        Returns a new concrete Spec; neither input is mutated.
        """
        if not self._concrete:
            raise SpecError("splice requires a concrete target spec")
        if not other._concrete:
            raise SpecError("splice requires a concrete replacement spec")
        replaced_name = replace or other.name
        if self._find_node(replaced_name) is None:
            raise SpecError(
                f"{self.name} has no dependency {replaced_name!r} to splice"
            )
        if replaced_name == self.name:
            raise SpecError("cannot splice a spec into itself")

        if transitive:
            # Replacement map: the spliced node, plus every node in other's
            # subdag that shadows a same-named node in self's DAG.
            replacements: Dict[str, Spec] = {replaced_name: other}
            self_names = {n.name for n in self.traverse()}
            for node in other.traverse(root=False):
                if node.name in self_names and node.name != replaced_name:
                    replacements[node.name] = node
        else:
            # Re-point other at self's existing shared dependencies.
            shared = {}
            for dep in other.traverse(root=False, deptype=DEPTYPE_LINK_RUN):
                mine = self._find_node(dep.name)
                if (
                    mine is not None
                    and mine.name != replaced_name
                    and mine.dag_hash() != dep.dag_hash()
                ):
                    shared[dep.name] = mine
            rewired_other = _rebuild(other, shared, {})
            replacements = {replaced_name: rewired_other}

        return _rebuild(self, replacements, {})

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def format(self, **kwargs) -> str:
        """One-line Table-1 rendering (see :func:`repro.spec.format_spec`)."""
        from .format import format_spec

        return format_spec(self, **kwargs)

    def short_str(self) -> str:
        """Compact ``name@version +variants`` rendering, no deps/arch."""
        parts = [self.name or ""]
        v = self.versions.concrete
        if v is not None:
            parts.append(f"@{v}")
        elif not self.versions.is_any:
            parts.append(f"@{self.versions}")
        variants = str(self.variants)
        if variants:
            parts.append(variants if variants.startswith(("+", "~")) else f" {variants}")
        return "".join(parts)

    def __str__(self) -> str:
        return self.format()

    def __repr__(self) -> str:
        return f"<Spec {self.format()}>"

    def to_dict(self) -> dict:
        """JSON-serializable full-DAG description (for buildcache indexes)."""
        nodes = []
        for node in self.traverse(order="post"):
            rec = node.node_dict()
            rec["hash"] = node.dag_hash()
            rec["dependencies"] = [
                {
                    "name": e.spec.name,
                    "hash": e.spec.dag_hash(),
                    "deptypes": sorted(e.deptypes),
                    "virtual": e.virtual,
                }
                for e in node.edges()
            ]
            if node.build_spec is not None:
                rec["build_spec"] = {
                    "name": node.build_spec.name,
                    "hash": node.build_spec.dag_hash(),
                }
            nodes.append(rec)
        return {"root": self.dag_hash(), "nodes": nodes}

    @staticmethod
    def from_dict(data: dict, build_spec_lookup=None) -> "Spec":
        """Reconstruct a concrete spec DAG from :meth:`to_dict` output.

        ``build_spec_lookup`` maps hashes to Specs for resolving
        ``build_spec`` provenance pointers across documents.
        """
        from .version import VersionList

        by_hash: Dict[str, Spec] = {}
        for rec in data["nodes"]:  # post-order: deps before dependents
            node = Spec(
                rec["name"],
                VersionList.from_string(rec["versions"]),
                VariantMap(rec["variants"]),
                rec["os"],
                rec["target"],
                rec.get("namespace", "builtin"),
            )
            node.external = rec.get("external", False)
            for dep in rec["dependencies"]:
                child = by_hash.get(dep["hash"])
                if child is None:
                    raise SpecError(
                        f"dangling dependency hash {dep['hash']} in spec document"
                    )
                node.add_dependency(child, tuple(dep["deptypes"]), dep.get("virtual"))
            bs = rec.get("build_spec")
            if bs is not None and build_spec_lookup is not None:
                node.build_spec = build_spec_lookup(bs["hash"])
            node._concrete = True
            by_hash[rec["hash"]] = node
        root = by_hash.get(data["root"])
        if root is None:
            raise SpecError("spec document has no root node")
        return root


def _copy_node(spec: Spec, memo: Dict[int, Spec]) -> Spec:
    """Deep-copy preserving shared-subdag structure."""
    key = id(spec)
    if key in memo:
        return memo[key]
    new = spec.copy(deps=False)
    memo[key] = new
    new._dependencies = {
        name: edge.copy(_copy_node(edge.spec, memo))
        for name, edge in spec._dependencies.items()
    }
    return new


def _rebuild(spec: Spec, replacements: Dict[str, Spec], memo: Dict[int, Spec]) -> Spec:
    """Rebuild a concrete DAG applying node replacements.

    Nodes whose dependency hashes change become spliced nodes: they gain a
    ``build_spec`` pointer to the original node (unless they already carry
    one — provenance chains stay rooted at the true original build) and drop
    their build-only dependency edges.
    """
    key = id(spec)
    if key in memo:
        return memo[key]

    new = spec.copy(deps=False)
    memo[key] = new
    changed = False
    new_deps: Dict[str, DependencySpec] = {}
    for name, edge in spec._dependencies.items():
        if name in replacements:
            replacement = replacements[name]
            if replacement.dag_hash() != edge.spec.dag_hash():
                changed = True
            # cross-package splices rekey the edge to the new name
            new_deps[replacement.name] = edge.copy(replacement)
        else:
            child = _rebuild(edge.spec, replacements, memo)
            if child.dag_hash() != edge.spec.dag_hash():
                changed = True
            new_deps[name] = edge.copy(child)

    if changed:
        # Spliced node: record provenance, drop build-only edges.
        original = spec if spec.build_spec is None else spec.build_spec
        new.build_spec = original
        new._dependencies = {
            name: e
            for name, e in new_deps.items()
            if DEPTYPE_LINK_RUN in e.deptypes
        }
    else:
        new._dependencies = new_deps
    new._concrete = True
    new._invalidate_hash()
    return new
