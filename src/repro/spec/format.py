"""Rendering specs back to the Table-1 syntax.

``format_spec`` produces the one-line form (root node plus ``^``-joined
dependency constraints); ``tree`` produces the indented multi-line form
that ``spack spec`` prints, annotated with hashes and splice markers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .spec import Spec

__all__ = ["format_spec", "format_node", "tree"]


def format_node(spec: "Spec", show_arch: bool = True) -> str:
    """Render a single node without its dependencies."""
    parts = []
    parts.append(spec.name if spec.name is not None else "")
    concrete_version = spec.versions.concrete
    if concrete_version is not None:
        parts.append(f"@{concrete_version}")
    elif not spec.versions.is_any:
        parts.append(f"@{spec.versions}")
    variant_text = str(spec.variants)
    if variant_text:
        if variant_text.startswith(("+", "~")):
            parts.append(variant_text)
        else:
            parts.append(" " + variant_text)
    if show_arch and (spec.os or spec.target):
        if spec.os and spec.target:
            parts.append(f" arch={spec.os}-{spec.target}")
        elif spec.os:
            parts.append(f" os={spec.os}")
        else:
            parts.append(f" target={spec.target}")
    if spec.external:
        parts.append(" [external]")
    return "".join(parts).strip()


def format_spec(spec: "Spec", deps: bool = True, show_arch: bool = False) -> str:
    """One-line rendering: root, then build deps (%), then link-run (^)."""
    from .spec import DEPTYPE_BUILD, DEPTYPE_LINK_RUN

    text = format_node(spec, show_arch=show_arch)
    if not deps:
        return text
    pieces = [text]
    seen = {spec.name}
    for node in spec.traverse(root=False):
        if node.name in seen:
            continue
        seen.add(node.name)
        edge = None
        for parent in spec.traverse():
            e = parent.dependency_edge(node.name)
            if e is not None:
                edge = e
                break
        sigil = "^"
        if edge is not None and edge.deptypes == frozenset([DEPTYPE_BUILD]):
            sigil = "%"
        pieces.append(f"{sigil}{format_node(node, show_arch=show_arch)}")
    return " ".join(p for p in pieces if p)


def tree(spec: "Spec", hashes: bool = True, indent: int = 0) -> str:
    """Indented multi-line rendering of the full DAG.

    Spliced nodes are marked with ``[spliced, build spec: <hash>]`` so the
    provenance structure of Figure 2 is visible in output.
    """
    lines = []
    _tree_lines(spec, 0, hashes, lines, set())
    pad = " " * indent
    return "\n".join(pad + line for line in lines)


def _tree_lines(spec: "Spec", depth: int, hashes: bool, lines: list, seen: set) -> None:
    prefix = "    " * depth
    text = format_node(spec, show_arch=True)
    if hashes:
        text = f"[{spec.dag_hash(7)}] {text}"
    if spec.spliced:
        text += f"  [spliced, build spec: {spec.build_spec.dag_hash(7)}]"
    lines.append(prefix + text)
    key = spec.dag_hash()
    if key in seen:
        return
    seen.add(key)
    for edge in spec.edges():
        _tree_lines(edge.spec, depth + 1, hashes, lines, seen)
