"""Spec subsystem: versions, variants, the Spec DAG, parser, and formatting."""

from .version import (
    Version,
    VersionRange,
    VersionList,
    VersionError,
    ver,
    any_version,
)
from .variant import Variant, VariantMap, VariantError
from .spec import (
    Spec,
    DependencySpec,
    SpecError,
    UnsatisfiableSpecError,
    DEPTYPE_BUILD,
    DEPTYPE_LINK_RUN,
    ALL_DEPTYPES,
)
from .parser import SpecParser, SpecParseError, parse, parse_one
from .format import format_spec, format_node, tree
from .diff import SpecDiff, NodeChange, diff_specs

__all__ = [
    "Version",
    "VersionRange",
    "VersionList",
    "VersionError",
    "ver",
    "any_version",
    "Variant",
    "VariantMap",
    "VariantError",
    "Spec",
    "DependencySpec",
    "SpecError",
    "UnsatisfiableSpecError",
    "DEPTYPE_BUILD",
    "DEPTYPE_LINK_RUN",
    "ALL_DEPTYPES",
    "SpecParser",
    "SpecParseError",
    "parse",
    "parse_one",
    "format_spec",
    "format_node",
    "tree",
    "SpecDiff",
    "NodeChange",
    "diff_specs",
]
