"""Parser for the spec syntax of Table 1.

Grammar (one spec)::

    spec      := [name] clause*
    clause    := "@" versions
               | "+" variant | "~" variant | "-" variant
               | key "=" value
               | "%" spec            (build dependency)
               | "^" spec            (link-run dependency)

``arch=``, ``os=`` and ``target=`` are reserved keys that set node
attributes rather than variants; everything else after ``=`` is a valued
variant.  ``^`` and ``%`` start *dependency* specs that bind more tightly
than the enclosing spec, i.e. ``hdf5 ^zlib@1.2 +shared`` attaches
``+shared`` to zlib (use spec separators carefully, exactly like Spack).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .spec import Spec, SpecError, DEPTYPE_BUILD, DEPTYPE_LINK_RUN
from .version import VersionList, VersionError

__all__ = ["SpecParser", "SpecParseError", "parse", "parse_one"]


class SpecParseError(SpecError):
    """Raised on malformed spec syntax."""


TOKEN_RE = re.compile(
    r"""
    (?P<version>@\s*=?\s*[A-Za-z0-9_.\-]*(?:\s*:\s*[A-Za-z0-9_.\-]*)?
        (?:\s*,\s*[A-Za-z0-9_.\-]*(?:\s*:\s*[A-Za-z0-9_.\-]*)?)*)
  | (?P<bool_variant>[+~](?:\s*)[A-Za-z0-9_][A-Za-z0-9_\-]*)
  | (?P<kv>[A-Za-z0-9_][A-Za-z0-9_\-]*\s*=\s*[A-Za-z0-9_.\-,]+)
  | (?P<hash>/[a-f0-9]+)
  | (?P<dep>\^)
  | (?P<builddep>%)
  | (?P<name>[A-Za-z0-9_][A-Za-z0-9_.\-]*)
  | (?P<ws>\s+)
""",
    re.VERBOSE,
)

#: key=value keys that set node attributes instead of variants
RESERVED_KEYS = {"os", "target", "arch", "namespace"}


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = TOKEN_RE.match(text, pos)
        if match is None:
            raise SpecParseError(f"unexpected character at {text[pos:pos + 10]!r}")
        kind = match.lastgroup
        if kind != "ws":
            tokens.append((kind, match.group(0)))
        pos = match.end()
    return tokens


class SpecParser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0

    def _peek(self) -> Optional[Tuple[str, str]]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> Tuple[str, str]:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def parse_specs(self) -> List[Spec]:
        """Parse a whitespace-separated list of independent specs."""
        specs: List[Spec] = []
        while self._peek() is not None:
            specs.append(self.parse_spec())
        return specs

    def parse_spec(self) -> Spec:
        spec = self._parse_node(allow_anonymous=True)
        while True:
            token = self._peek()
            if token is None:
                break
            kind, _ = token
            if kind == "dep":
                self._next()
                dep = self._parse_node(allow_anonymous=False)
                self._attach_subdeps(dep)
                spec.add_dependency(dep, (DEPTYPE_LINK_RUN,))
            elif kind == "builddep":
                self._next()
                dep = self._parse_node(allow_anonymous=False)
                spec.add_dependency(dep, (DEPTYPE_BUILD,))
            elif kind == "name":
                break  # start of the next independent spec
            else:
                raise SpecParseError(
                    f"unexpected token {token[1]!r} in {self.text!r}"
                )
        return spec

    def _attach_subdeps(self, parent: Spec) -> None:
        """Dependencies written after a ^dep chain onto the root, matching
        Spack: ``a ^b ^c`` means a depends on b AND c (both attach to a)."""
        # Spack semantics: all ^-deps attach to the root spec, so nothing
        # nests here.  This hook exists for documentation and future
        # parenthesized syntax.
        return None

    def _parse_node(self, allow_anonymous: bool) -> Spec:
        spec = Spec()
        token = self._peek()
        if token is not None and token[0] == "name":
            spec.name = self._next()[1]
        elif not allow_anonymous:
            raise SpecParseError(f"expected a package name in {self.text!r}")
        while True:
            token = self._peek()
            if token is None:
                break
            kind, text = token
            if kind == "version":
                self._next()
                vtext = text[1:].replace(" ", "")
                try:
                    spec.versions = spec.versions.intersection(
                        VersionList.from_string(vtext)
                    )
                except VersionError as e:
                    raise SpecParseError(str(e)) from e
                if not spec.versions:
                    raise SpecParseError(f"contradictory versions in {self.text!r}")
            elif kind == "bool_variant":
                self._next()
                name = text[1:].strip()
                spec.variants.set(name, text[0] == "+")
            elif kind == "hash":
                self._next()
                spec.abstract_hash = text[1:]
            elif kind == "kv":
                self._next()
                key, _, value = text.partition("=")
                key, value = key.strip(), value.strip()
                if key in RESERVED_KEYS:
                    self._set_reserved(spec, key, value)
                else:
                    spec.variants.set(key, value)
            else:
                break
        if spec.name is None and self._spec_is_empty(spec):
            raise SpecParseError(f"empty spec in {self.text!r}")
        return spec

    @staticmethod
    def _spec_is_empty(spec: Spec) -> bool:
        return (
            spec.versions.is_any
            and len(spec.variants) == 0
            and spec.os is None
            and spec.target is None
            and spec.abstract_hash is None
        )

    @staticmethod
    def _set_reserved(spec: Spec, key: str, value: str) -> None:
        if key == "os":
            spec.os = value
        elif key == "target":
            spec.target = value
        elif key == "namespace":
            spec.namespace = value
        elif key == "arch":
            # arch=platform-os-target or arch=os-target or bare target
            parts = value.split("-")
            if len(parts) >= 3:
                spec.os, spec.target = parts[-2], parts[-1]
            elif len(parts) == 2:
                spec.os, spec.target = parts[0], parts[1]
            else:
                spec.target = value


def parse(text: str) -> List[Spec]:
    """Parse a string of whitespace-separated specs."""
    return SpecParser(text).parse_specs()


def parse_one(text: str) -> Spec:
    """Parse exactly one spec; raise if the text holds zero or several."""
    specs = parse(text)
    if len(specs) != 1:
        raise SpecParseError(
            f"expected exactly one spec in {text!r}, got {len(specs)}"
        )
    return specs[0]
