"""Spec diffing: what changed between two concrete specs?

The analogue of ``spack diff``: compares two spec DAGs node by node and
reports version/variant/arch changes, added/removed nodes, and splice
provenance differences — the tool you reach for when asking "why does
this installation hash differently from that one?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .spec import Spec

__all__ = ["SpecDiff", "NodeChange", "diff_specs"]


@dataclass
class NodeChange:
    """Changes between two same-named nodes."""

    name: str
    version: Optional[Tuple[str, str]] = None
    variants: Dict[str, Tuple[Optional[str], Optional[str]]] = field(
        default_factory=dict
    )
    os: Optional[Tuple[str, str]] = None
    target: Optional[Tuple[str, str]] = None
    #: (old dep set, new dep set) when the link-run children differ
    dependencies: Optional[Tuple[tuple, tuple]] = None
    #: became/ceased being spliced, or changed build spec
    splice: Optional[Tuple[Optional[str], Optional[str]]] = None

    @property
    def empty(self) -> bool:
        """True when the two nodes are indistinguishable."""
        return not any(
            (self.version, self.variants, self.os, self.target,
             self.dependencies, self.splice)
        )


@dataclass
class SpecDiff:
    """The full difference report between two specs."""

    left: Spec
    right: Spec
    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    changed: List[NodeChange] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        """True when the DAGs match node-for-node."""
        return not (self.added or self.removed or self.changed)

    def summary(self) -> str:
        """Human-readable +/-/~ report (the `repro diff` output)."""
        if self.identical:
            return "specs are identical"
        lines: List[str] = []
        for name in self.removed:
            lines.append(f"- {name}")
        for name in self.added:
            lines.append(f"+ {name}")
        for change in self.changed:
            lines.append(f"~ {change.name}")
            if change.version:
                lines.append(
                    f"    version: {change.version[0]} -> {change.version[1]}"
                )
            for variant, (old, new) in sorted(change.variants.items()):
                lines.append(f"    {variant}: {old} -> {new}")
            if change.os:
                lines.append(f"    os: {change.os[0]} -> {change.os[1]}")
            if change.target:
                lines.append(
                    f"    target: {change.target[0]} -> {change.target[1]}"
                )
            if change.dependencies:
                old, new = change.dependencies
                lines.append(
                    f"    deps: {', '.join(old) or '(none)'} -> "
                    f"{', '.join(new) or '(none)'}"
                )
            if change.splice:
                old, new = change.splice
                lines.append(
                    f"    build spec: {old or '(not spliced)'} -> "
                    f"{new or '(not spliced)'}"
                )
        return "\n".join(lines)


def diff_specs(left: Spec, right: Spec) -> SpecDiff:
    """Compare two spec DAGs node-by-node (matched by package name)."""
    result = SpecDiff(left, right)
    left_nodes = {n.name: n for n in left.traverse()}
    right_nodes = {n.name: n for n in right.traverse()}
    result.removed = sorted(set(left_nodes) - set(right_nodes))
    result.added = sorted(set(right_nodes) - set(left_nodes))
    for name in sorted(set(left_nodes) & set(right_nodes)):
        change = _diff_node(left_nodes[name], right_nodes[name])
        if not change.empty:
            result.changed.append(change)
    return result


def _diff_node(old: Spec, new: Spec) -> NodeChange:
    change = NodeChange(name=old.name)
    old_version = str(old.versions)
    new_version = str(new.versions)
    if old_version != new_version:
        change.version = (old_version.lstrip("="), new_version.lstrip("="))
    variant_names = {v.name for _, v in old.variants.items()} | {
        v.name for _, v in new.variants.items()
    }
    for name in variant_names:
        old_value = old.variants.get(name)
        new_value = new.variants.get(name)
        if old_value != new_value:
            change.variants[name] = (old_value, new_value)
    if old.os != new.os:
        change.os = (old.os, new.os)
    if old.target != new.target:
        change.target = (old.target, new.target)
    old_deps = tuple(sorted(e.spec.name for e in old.edges()))
    new_deps = tuple(sorted(e.spec.name for e in new.edges()))
    if old_deps != new_deps:
        change.dependencies = (old_deps, new_deps)
    old_build = old.build_spec.dag_hash(7) if old.build_spec else None
    new_build = new.build_spec.dag_hash(7) if new.build_spec else None
    if old_build != new_build:
        change.splice = (old_build, new_build)
    return change
