"""Version model for the mini-Spack spec language.

Spack versions are dotted sequences of numeric and alphabetic components
(``1.2.0``, ``2021.06``, ``1.2rc1``, ``develop``).  This module implements:

* :class:`Version` — a single concrete version with Spack-style total
  ordering (numeric components compare numerically, alphabetic components
  compare lexically, and "infinity versions" like ``develop``/``main`` sort
  above everything numeric).
* :class:`VersionRange` — a closed range ``lo:hi`` where either side may be
  open.
* :class:`VersionList` — an ordered disjunction of versions and ranges, as
  written ``1.2,1.4:1.6``.

The key operations are the constraint-lattice ones used by specs:
``satisfies`` (subset), ``intersects`` (non-empty overlap),
``intersection`` and ``union``.
"""

from __future__ import annotations

import re
from functools import total_ordering
from typing import Iterable, Optional, Tuple, Union

__all__ = [
    "Version",
    "VersionRange",
    "VersionList",
    "VersionError",
    "ver",
    "any_version",
]


class VersionError(ValueError):
    """Raised for malformed version strings or invalid version operations."""


#: Named versions that sort above every numeric version, in increasing
#: order of "infinity-ness".  ``develop`` is the most bleeding-edge.
INFINITY_VERSIONS = ("stable", "trunk", "head", "master", "main", "develop")

_SEGMENT_RE = re.compile(r"(\d+|[a-zA-Z]+)")
_VALID_VERSION_RE = re.compile(r"^[A-Za-z0-9_.\-]+$")


def _parse_components(string: str) -> Tuple:
    """Split a version string into a tuple of comparable components.

    Numeric runs become ints; alphabetic runs stay strings.  Separators
    (``.``, ``-``, ``_``) are dropped.  An infinity version becomes a
    single ``(kind, rank)`` marker tuple that compares above ints.
    """
    if string in INFINITY_VERSIONS:
        return (_Infinity(INFINITY_VERSIONS.index(string)),)
    parts = []
    for match in _SEGMENT_RE.finditer(string):
        text = match.group(0)
        parts.append(int(text) if text.isdigit() else text)
    if not parts:
        raise VersionError(f"invalid version string: {string!r}")
    return tuple(parts)


@total_ordering
class _Infinity:
    """Marker component for named development versions (sorts above ints)."""

    __slots__ = ("rank",)

    def __init__(self, rank: int):
        self.rank = rank

    def __eq__(self, other) -> bool:
        return isinstance(other, _Infinity) and self.rank == other.rank

    def __lt__(self, other) -> bool:
        if isinstance(other, _Infinity):
            return self.rank < other.rank
        return False  # infinity is greater than any int/str component

    def __hash__(self) -> int:
        return hash(("__infinity__", self.rank))

    def __repr__(self) -> str:
        return f"_Infinity({INFINITY_VERSIONS[self.rank]})"


def _cmp_component(a, b) -> int:
    """Three-way compare of single version components.

    Ordering rules (mirroring Spack):
    * int vs int: numeric
    * str vs str: lexicographic
    * int vs str: the *string* is a prerelease-ish suffix and sorts BELOW
      the int (so ``1.0 > 1.0rc1`` works at the padded-component level —
      see ``Version.__lt__``).
    * infinity beats everything.
    """
    a_inf, b_inf = isinstance(a, _Infinity), isinstance(b, _Infinity)
    if a_inf or b_inf:
        if a_inf and b_inf:
            return (a.rank > b.rank) - (a.rank < b.rank)
        return 1 if a_inf else -1
    a_int, b_int = isinstance(a, int), isinstance(b, int)
    if a_int and b_int:
        return (a > b) - (a < b)
    if not a_int and not b_int:
        return (a > b) - (a < b)
    # mixed: ints sort above strings ("1.2" > "1.b")
    return 1 if a_int else -1


@total_ordering
class Version:
    """A single concrete version, e.g. ``Version("1.14.5")``.

    Versions are immutable and hashable; ordering follows Spack's rules.
    A version also acts as a degenerate range for ``satisfies`` checks:
    ``Version("1.2").satisfies(VersionRange("1", "2"))`` is true.
    """

    __slots__ = ("string", "components")

    def __init__(self, string: Union[str, int, float, "Version"]):
        if isinstance(string, Version):
            string = string.string
        string = str(string)
        if not string or not _VALID_VERSION_RE.match(string):
            raise VersionError(f"invalid version string: {string!r}")
        self.string = string
        self.components = _parse_components(string)

    # -- comparisons ------------------------------------------------------
    def __eq__(self, other) -> bool:
        return isinstance(other, Version) and self.components == other.components

    def __lt__(self, other) -> bool:
        if not isinstance(other, Version):
            return NotImplemented
        a, b = self.components, other.components
        for x, y in zip(a, b):
            c = _cmp_component(x, y)
            if c:
                return c < 0
        if len(a) == len(b):
            return False
        # Shorter is smaller unless the extra components start with a
        # string (prerelease suffix): 1.0 < 1.0.1 but 1.0rc1 < 1.0.
        longer, flip = (b, False) if len(a) < len(b) else (a, True)
        extra = longer[min(len(a), len(b))]
        extra_is_prerelease = isinstance(extra, str)
        result = not extra_is_prerelease  # shorter < longer-with-numeric-extra
        return result if not flip else not result

    def __hash__(self) -> int:
        return hash(self.components)

    def __str__(self) -> str:
        return self.string

    def __repr__(self) -> str:
        return f"Version({self.string!r})"

    # -- range-like protocol ----------------------------------------------
    @property
    def lo(self) -> "Version":
        return self

    @property
    def hi(self) -> "Version":
        return self

    def is_prefix_of(self, other: "Version") -> bool:
        """True if ``other`` has this version's components as a prefix.

        ``1.2`` is a prefix of ``1.2.3`` — used so that the single-version
        constraint ``@1.2`` admits any ``1.2.x`` when written as a range
        endpoint.
        """
        return other.components[: len(self.components)] == self.components

    def up_to(self, index: int) -> "Version":
        """The version formed by the first ``index`` dot-components."""
        parts = self.string.replace("-", ".").replace("_", ".").split(".")
        return Version(".".join(parts[:index]))

    def satisfies(self, other: "VersionConstraint") -> bool:
        if isinstance(other, Version):
            return self == other
        return other.contains(self)

    def intersects(self, other: "VersionConstraint") -> bool:
        if isinstance(other, Version):
            return self == other
        return other.contains(self)

    def contains(self, other: "Version") -> bool:
        return self == other


class VersionRange:
    """A closed version range ``lo:hi``; either bound may be ``None`` (open).

    Range endpoints use *prefix* semantics on the high side: the range
    ``:1.2`` includes ``1.2.99`` because ``1.2`` is a prefix of it — this
    matches Spack, where ``hdf5@:1.12`` admits every 1.12 patch release.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Optional[Union[str, Version]], hi: Optional[Union[str, Version]]):
        self.lo = Version(lo) if lo is not None and not isinstance(lo, Version) else lo
        self.hi = Version(hi) if hi is not None and not isinstance(hi, Version) else hi
        if self.lo is not None and self.hi is not None:
            if self.hi < self.lo and not self.hi.is_prefix_of(self.lo):
                raise VersionError(f"empty version range: {self}")

    # -- membership ---------------------------------------------------------
    def contains(self, version: Version) -> bool:
        if self.lo is not None:
            if version < self.lo and not self.lo.is_prefix_of(version):
                return False
        if self.hi is not None:
            if version > self.hi and not self.hi.is_prefix_of(version):
                return False
        return True

    # -- lattice ops ---------------------------------------------------------
    def intersects(self, other: "VersionConstraint") -> bool:
        if isinstance(other, Version):
            return self.contains(other)
        if isinstance(other, VersionList):
            return other.intersects(self)
        lo = self._max_lo(self.lo, other.lo)
        hi = self._min_hi(self.hi, other.hi)
        if lo is None or hi is None:
            return True
        return lo <= hi or hi.is_prefix_of(lo)

    def satisfies(self, other: "VersionConstraint") -> bool:
        """True if every version in ``self`` is in ``other`` (subset)."""
        if isinstance(other, Version):
            # A non-degenerate range can only satisfy a single version if
            # it is exactly that version on both ends.
            return self.lo == other and self.hi == other
        if isinstance(other, VersionList):
            return any(self.satisfies(c) for c in other.constraints)
        lo_ok = other.lo is None or (
            self.lo is not None
            and (self.lo >= other.lo or other.lo.is_prefix_of(self.lo))
        )
        hi_ok = other.hi is None or (
            self.hi is not None
            and (self.hi <= other.hi or other.hi.is_prefix_of(self.hi))
        )
        return lo_ok and hi_ok

    def intersection(self, other: "VersionRange") -> Optional["VersionRange"]:
        lo = self._max_lo(self.lo, other.lo)
        hi = self._min_hi(self.hi, other.hi)
        try:
            return VersionRange(lo, hi)
        except VersionError:
            return None

    @staticmethod
    def _max_lo(a: Optional[Version], b: Optional[Version]) -> Optional[Version]:
        if a is None:
            return b
        if b is None:
            return a
        return max(a, b)

    @staticmethod
    def _min_hi(a: Optional[Version], b: Optional[Version]) -> Optional[Version]:
        if a is None:
            return b
        if b is None:
            return a
        # Upper bounds are prefix-closed: the bound "1.2" admits every
        # 1.2.x, so it is *looser* than "1.2.3" even though it compares
        # smaller.  When one bound is a prefix of the other, the longer
        # (more specific) one is the tighter upper bound.
        if a.is_prefix_of(b):
            return b
        if b.is_prefix_of(a):
            return a
        return min(a, b)

    # -- dunder ---------------------------------------------------------------
    def __eq__(self, other) -> bool:
        return (
            isinstance(other, VersionRange)
            and self.lo == other.lo
            and self.hi == other.hi
        )

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __str__(self) -> str:
        if self.lo is not None and self.lo == self.hi:
            return str(self.lo)  # prefix-closed single range, e.g. "@1.14"
        lo = str(self.lo) if self.lo is not None else ""
        hi = str(self.hi) if self.hi is not None else ""
        return f"{lo}:{hi}"

    def __repr__(self) -> str:
        return f"VersionRange({self.lo!r}, {self.hi!r})"


VersionConstraint = Union[Version, VersionRange, "VersionList"]


class VersionList:
    """An ordered disjunction of versions and ranges: ``1.2,1.4:1.6``.

    The empty constraint string parses to the "any version" list, which
    contains every version.  Constraints are kept sorted by their low
    endpoint for canonical printing and stable hashing.
    """

    __slots__ = ("constraints",)

    def __init__(self, constraints: Iterable[Union[Version, VersionRange]] = ()):
        self.constraints = sorted(constraints, key=_constraint_sort_key)

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_string(cls, string: str) -> "VersionList":
        """Parse the text after an ``@`` sigil, e.g. ``1.2,1.4:1.6``."""
        string = string.strip()
        if not string or string == ":":
            return cls([VersionRange(None, None)])
        constraints: list = []
        for chunk in string.split(","):
            chunk = chunk.strip()
            if not chunk:
                raise VersionError(f"empty constraint in version list: {string!r}")
            if ":" in chunk:
                lo_s, _, hi_s = chunk.partition(":")
                lo = lo_s.strip() or None
                hi = hi_s.strip() or None
                constraints.append(VersionRange(lo, hi))
            elif chunk.startswith("="):
                # @=1.14 pins the exact version
                constraints.append(Version(chunk[1:]))
            else:
                # Bare @1.14 is the prefix-closed range 1.14:1.14, which
                # admits 1.14.5 etc. — Spack semantics (the paper's
                # depends_on("zlib@1.2") concretizes to zlib@1.2.11).
                v = Version(chunk)
                constraints.append(VersionRange(v, v))
        return cls(constraints)

    # -- queries ---------------------------------------------------------------
    @property
    def is_any(self) -> bool:
        return self.constraints == [VersionRange(None, None)]

    @property
    def concrete(self) -> Optional[Version]:
        """The single Version if this list pins exactly one, else None."""
        if len(self.constraints) == 1 and isinstance(self.constraints[0], Version):
            return self.constraints[0]
        return None

    def contains(self, version: Version) -> bool:
        return any(c.contains(version) for c in self.constraints)

    def intersects(self, other: VersionConstraint) -> bool:
        if isinstance(other, (Version, VersionRange)):
            other = VersionList([other])
        return any(
            a.intersects(b) for a in self.constraints for b in other.constraints
        )

    def satisfies(self, other: VersionConstraint) -> bool:
        """Subset check: every member constraint fits inside ``other``."""
        if isinstance(other, (Version, VersionRange)):
            other = VersionList([other])
        if other.is_any:
            return True
        return all(
            any(a.satisfies(b) for b in other.constraints) for a in self.constraints
        )

    def intersection(self, other: "VersionList") -> "VersionList":
        """The (possibly empty) list of pairwise intersections."""
        out: list = []
        for a in self.constraints:
            for b in other.constraints:
                piece = _intersect_pair(a, b)
                if piece is not None and piece not in out:
                    out.append(piece)
        return VersionList(out)

    def union(self, other: "VersionList") -> "VersionList":
        merged = list(self.constraints)
        for c in other.constraints:
            if c not in merged:
                merged.append(c)
        return VersionList(merged)

    # -- dunder -------------------------------------------------------------
    def __eq__(self, other) -> bool:
        return isinstance(other, VersionList) and self.constraints == other.constraints

    def __hash__(self) -> int:
        return hash(tuple(self.constraints))

    def __bool__(self) -> bool:
        return bool(self.constraints)

    def __iter__(self):
        return iter(self.constraints)

    def __str__(self) -> str:
        if self.is_any:
            return ":"
        # exact versions get the "=" marker so text round-trips (a bare
        # version string parses as a prefix-closed range)
        return ",".join(
            f"={c}" if isinstance(c, Version) else str(c)
            for c in self.constraints
        )

    def __repr__(self) -> str:
        return f"VersionList({self.constraints!r})"


def _constraint_sort_key(c: Union[Version, VersionRange]):
    lo = c.lo if c.lo is not None else Version("0")
    # Degenerate flag orders a single version before a range at the same lo.
    return (lo, isinstance(c, VersionRange))


def _intersect_pair(a, b):
    """Intersect two Version-or-VersionRange constraints; None if empty."""
    if isinstance(a, Version) and isinstance(b, Version):
        return a if a == b else None
    if isinstance(a, Version):
        return a if b.contains(a) else None
    if isinstance(b, Version):
        return b if a.contains(b) else None
    return a.intersection(b)


def ver(spec: Union[str, int, float]) -> VersionConstraint:
    """Parse a version expression into the narrowest type that holds it.

    ``ver("1.2")`` → Version; ``ver("1.2:1.6")`` → VersionRange wrapped in a
    VersionList; ``ver("1.2,1.4")`` → VersionList.
    """
    text = str(spec).strip()
    if "," in text or ":" in text:
        return VersionList.from_string(text)
    return Version(text)


def any_version() -> VersionList:
    """The constraint satisfied by every version (``@:``)."""
    return VersionList([VersionRange(None, None)])
