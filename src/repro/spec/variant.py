"""Variants: compile-time options attached to spec nodes.

A variant is a named build option.  Spack distinguishes boolean variants
(``+bzip`` / ``~bzip``) from valued variants (``pmi=pmix``,
``target=icelake``).  A :class:`VariantMap` holds the variant settings of a
single spec node and supports the same constraint-lattice operations as
versions: ``satisfies`` (every setting here is at least as constrained as
the other side requires), ``intersects`` and ``constrain``.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple, Union

__all__ = ["Variant", "VariantMap", "VariantError", "normalize_value"]


class VariantError(ValueError):
    """Raised for conflicting or malformed variant settings."""


def normalize_value(value) -> str:
    """Canonicalize a variant value to its string form.

    Booleans map to ``"True"``/``"False"`` to match the ASP encoding used
    in the paper (e.g. ``attr("variant", node("example"), "bzip", "True")``).
    """
    if isinstance(value, bool):
        return "True" if value else "False"
    return str(value)


class Variant:
    """A single variant setting ``name=value`` on a spec node."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: Union[str, bool]):
        if not name or not name[0].isalpha():
            raise VariantError(f"invalid variant name: {name!r}")
        self.name = name
        self.value = normalize_value(value)

    @property
    def is_bool(self) -> bool:
        """True for +name/~name variants (value True/False)."""
        return self.value in ("True", "False")

    def satisfies(self, other: "Variant") -> bool:
        """Same variant pinned to the same value."""
        return self.name == other.name and self.value == other.value

    def copy(self) -> "Variant":
        """An independent copy."""
        return Variant(self.name, self.value)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Variant)
            and self.name == other.name
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.name, self.value))

    def __str__(self) -> str:
        if self.value == "True":
            return f"+{self.name}"
        if self.value == "False":
            return f"~{self.name}"
        return f"{self.name}={self.value}"

    def __repr__(self) -> str:
        return f"Variant({self.name!r}, {self.value!r})"


class VariantMap:
    """The set of variant settings on one spec node, keyed by name."""

    __slots__ = ("_variants",)

    def __init__(self, variants: Dict[str, Union[str, bool]] | None = None):
        self._variants: Dict[str, Variant] = {}
        if variants:
            for name, value in variants.items():
                self.set(name, value)

    # -- mutation -----------------------------------------------------------
    def set(self, name: str, value: Union[str, bool]) -> None:
        """Pin ``name`` to ``value`` (overwrites any prior setting)."""
        self._variants[name] = Variant(name, value)

    def constrain(self, other: "VariantMap") -> bool:
        """Tighten this map with ``other``'s settings.

        Returns True if anything changed.  Raises :class:`VariantError`
        when the two maps pin the same variant to different values.
        """
        changed = False
        for name, variant in other.items():
            mine = self._variants.get(name)
            if mine is None:
                self._variants[name] = variant.copy()
                changed = True
            elif mine.value != variant.value:
                raise VariantError(
                    f"conflicting values for variant {name!r}: "
                    f"{mine.value!r} vs {variant.value!r}"
                )
        return changed

    # -- queries --------------------------------------------------------------
    def satisfies(self, other: "VariantMap") -> bool:
        """True when every setting required by ``other`` is matched here."""
        for name, variant in other.items():
            mine = self._variants.get(name)
            if mine is None or mine.value != variant.value:
                return False
        return True

    def intersects(self, other: "VariantMap") -> bool:
        """True when no variant is pinned to different values in the two."""
        for name, variant in other.items():
            mine = self._variants.get(name)
            if mine is not None and mine.value != variant.value:
                return False
        return True

    def get(self, name: str, default=None):
        variant = self._variants.get(name)
        return variant.value if variant is not None else default

    def copy(self) -> "VariantMap":
        new = VariantMap()
        new._variants = {k: v.copy() for k, v in self._variants.items()}
        return new

    # -- iteration / dunder ---------------------------------------------------
    def items(self) -> Iterator[Tuple[str, Variant]]:
        return iter(sorted(self._variants.items()))

    def __contains__(self, name: str) -> bool:
        return name in self._variants

    def __getitem__(self, name: str) -> str:
        return self._variants[name].value

    def __len__(self) -> int:
        return len(self._variants)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._variants))

    def __eq__(self, other) -> bool:
        return isinstance(other, VariantMap) and dict(self._variants) == dict(
            other._variants
        )

    def __hash__(self) -> int:
        return hash(tuple(sorted((v.name, v.value) for v in self._variants.values())))

    def __str__(self) -> str:
        if not self._variants:
            return ""
        bools = [v for _, v in self.items() if v.is_bool]
        valued = [v for _, v in self.items() if not v.is_bool]
        text = "".join(str(v) for v in bools)
        if valued:
            text += (" " if text else "") + " ".join(str(v) for v in valued)
        return text

    def __repr__(self) -> str:
        return f"VariantMap({{{', '.join(f'{v.name!r}: {v.value!r}' for _, v in self.items())}}})"
