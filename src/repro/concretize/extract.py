"""Extract concrete Specs (with splices and build provenance) from the
optimal stable model.

The model describes one node per package name with attributes::

    attr("node", node(P))
    attr("version", node(P), V)
    attr("variant", node(P), Var, Val)
    attr("node_os", node(P), O) / attr("node_target", node(P), T)
    attr("depends_on", node(P), node(D), Type)
    attr("hash", node(P), H)                  -- reused
    attr("splice", node(P), C, CH, node(S))   -- dependency C (hash CH)
                                                 of reused P replaced by S

Reconstruction is bottom-up: built nodes become fresh concrete Specs;
reused nodes resolve through the buildcache lookup, and any node whose
cached DAG contains a spliced dependency is rebuilt with
:meth:`Spec.splice` — which installs ``build_spec`` provenance pointers
exactly as Section 4.1 prescribes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..asp.api import Model
from ..asp.syntax import Atom, Function, String
from ..spec import Spec, VariantMap, VersionList, DEPTYPE_BUILD, DEPTYPE_LINK_RUN

__all__ = ["ModelExtractor", "ExtractionError", "NodeData"]


class ExtractionError(RuntimeError):
    """Raised when the model cannot be turned into concrete specs."""


def _string(term) -> str:
    if isinstance(term, String):
        return term.value
    raise ExtractionError(f"expected a string term, got {term!r}")


def _node_name(term) -> str:
    if isinstance(term, Function) and term.name == "node" and len(term.args) == 1:
        return _string(term.args[0])
    raise ExtractionError(f"expected node(...), got {term!r}")


class NodeData:
    """Accumulated model attributes for one package node."""

    __slots__ = (
        "name",
        "version",
        "variants",
        "os",
        "target",
        "hash",
        "link_deps",
        "build_deps",
        "splices",
    )

    def __init__(self, name: str):
        self.name = name
        self.version: Optional[str] = None
        self.variants: Dict[str, str] = {}
        self.os: Optional[str] = None
        self.target: Optional[str] = None
        self.hash: Optional[str] = None
        self.link_deps: Set[str] = set()
        self.build_deps: Set[str] = set()
        #: (replaced_child_name, replaced_child_hash, splicing_node_name)
        self.splices: List[Tuple[str, str, str]] = []


class ModelExtractor:
    """Builds concrete Spec DAGs from a solve model."""

    def __init__(self, model: Model, cache_lookup: Callable[[str], Spec]):
        self.model = model
        self.cache_lookup = cache_lookup
        self.nodes: Dict[str, NodeData] = {}
        self._specs: Dict[str, Spec] = {}
        self._parse()

    # ------------------------------------------------------------------
    def _node(self, name: str) -> NodeData:
        data = self.nodes.get(name)
        if data is None:
            data = NodeData(name)
            self.nodes[name] = data
        return data

    def _parse(self) -> None:
        for atom in self.model.by_predicate("attr"):
            kind = _string(atom.args[0])
            if kind == "node":
                self._node(_node_name(atom.args[1]))
            elif kind == "version":
                self._node(_node_name(atom.args[1])).version = _string(atom.args[2])
            elif kind == "variant":
                data = self._node(_node_name(atom.args[1]))
                data.variants[_string(atom.args[2])] = _string(atom.args[3])
            elif kind == "node_os":
                self._node(_node_name(atom.args[1])).os = _string(atom.args[2])
            elif kind == "node_target":
                self._node(_node_name(atom.args[1])).target = _string(atom.args[2])
            elif kind == "hash":
                self._node(_node_name(atom.args[1])).hash = _string(atom.args[2])
            elif kind == "depends_on":
                parent = self._node(_node_name(atom.args[1]))
                child = _node_name(atom.args[2])
                deptype = _string(atom.args[3])
                if deptype == DEPTYPE_BUILD:
                    parent.build_deps.add(child)
                else:
                    parent.link_deps.add(child)
            elif kind == "splice":
                parent = self._node(_node_name(atom.args[1]))
                parent.splices.append(
                    (
                        _string(atom.args[2]),
                        _string(atom.args[3]),
                        _node_name(atom.args[4]),
                    )
                )

    # ------------------------------------------------------------------
    def extract(self) -> Dict[str, Spec]:
        """Concrete spec per node name, splices applied."""
        for name in self._topo_order():
            self._specs[name] = self._build_spec(self.nodes[name])
        return dict(self._specs)

    def _topo_order(self) -> List[str]:
        order: List[str] = []
        state: Dict[str, int] = {}

        def visit(name: str) -> None:
            mark = state.get(name, 0)
            if mark == 2:
                return
            if mark == 1:
                raise ExtractionError(f"dependency cycle through {name!r}")
            state[name] = 1
            data = self.nodes.get(name)
            if data is not None:
                for child in sorted(data.link_deps | data.build_deps):
                    visit(child)
            state[name] = 2
            order.append(name)

        for name in sorted(self.nodes):
            visit(name)
        return order

    # ------------------------------------------------------------------
    def _build_spec(self, data: NodeData) -> Spec:
        if data.hash is not None:
            return self._reused_spec(data)
        return self._fresh_spec(data)

    def _fresh_spec(self, data: NodeData) -> Spec:
        if data.version is None:
            raise ExtractionError(f"node {data.name} has no version in the model")
        spec = Spec(
            data.name,
            VersionList.from_string(f"={data.version}"),
            VariantMap(dict(data.variants)),
            data.os,
            data.target,
        )
        for child in sorted(data.link_deps):
            spec.add_dependency(self._specs[child], (DEPTYPE_LINK_RUN,))
        for child in sorted(data.build_deps - data.link_deps):
            spec.add_dependency(self._specs[child], (DEPTYPE_BUILD,))
        spec._mark_concrete()
        return spec

    def _reused_spec(self, data: NodeData) -> Spec:
        try:
            cached = self.cache_lookup(data.hash)
        except KeyError:
            raise ExtractionError(
                f"model reuses unknown hash {data.hash} for {data.name}"
            ) from None
        # Splice marks anywhere in this cached DAG apply here: a deep
        # splice changes every node between the root and the splice
        # point (Figure 2), which Spec.splice handles transitively.
        subdag_names = {n.name for n in cached.traverse()}
        relevant: Dict[str, Tuple[str, str]] = {}
        for node_data in self.nodes.values():
            for child_name, child_hash, splicing in node_data.splices:
                if node_data.name in subdag_names and child_name in subdag_names:
                    existing = relevant.get(child_name)
                    if existing is not None and existing != (child_hash, splicing):
                        raise ExtractionError(
                            f"conflicting splices for {child_name} under {data.name}"
                        )
                    relevant[child_name] = (child_hash, splicing)
        spec = cached
        for child_name, (child_hash, splicing) in sorted(relevant.items()):
            replacement = self._specs.get(splicing)
            if replacement is None:
                raise ExtractionError(
                    f"splice replacement {splicing} not yet extracted"
                )
            if child_name not in {n.name for n in spec.traverse()}:
                continue  # already replaced by an earlier splice
            spec = spec.splice(replacement, transitive=True, replace=child_name)
        return spec
