"""Compile packages and abstract specs into ASP facts and rules.

The encoding follows Section 5.1 of the paper:

* specs become ``node``/``attr`` facts;
* package directives become ``pkg_fact`` facts plus *condition* rules
  (we generate one specialized ``condition_holds`` rule per conditional
  directive — semantically equivalent to the paper's data-driven
  ``condition``/``condition_requirement`` tables, and the same shape the
  paper itself uses for ``can_splice``, Figure 4a);
* version *constraints* (ranges) are discretized in Python: each
  distinct constraint becomes a ``version_in_set`` fact set over the
  package's declared versions.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from ..asp.syntax import (
    Atom,
    Comparison,
    Function,
    Integer,
    Literal,
    Program,
    Rule,
    String,
)
from ..package.package import PackageBase
from ..package.repository import Repository
from ..spec import Spec, VersionList, DEPTYPE_BUILD, DEPTYPE_LINK_RUN

__all__ = ["Encoder", "EncodingError", "node_term", "s"]


class EncodingError(ValueError):
    """Raised when a spec or package cannot be encoded."""


def s(text) -> String:
    return String(str(text))


def node_term(name: str) -> Function:
    return Function("node", [s(name)])


def atom(predicate: str, *args) -> Atom:
    return Atom(predicate, args)


class Encoder:
    """Stateful encoder: accumulates facts/rules for one concretization.

    A fresh Encoder is used per solve; package encodings are cached at
    class level keyed by package class (they never change at runtime).
    """

    _package_cache: Dict[Tuple[type, bool], Tuple[List[Atom], List[Rule]]] = {}

    def __init__(self, repo: Repository):
        self.repo = repo
        self.facts: List[Atom] = []
        self.rules: List[Rule] = []
        self._vset_counter = 0
        self._vset_ids: Dict[Tuple[str, str], str] = {}
        #: version_in_set facts per set id, so rolled-back requests that
        #: touch a previously registered set can re-emit its members
        self._vset_facts: Dict[str, List[Atom]] = {}
        self._touched_vsets: Optional[set] = None
        self._condition_counter = 0

    # ------------------------------------------------------------------
    # version sets
    # ------------------------------------------------------------------
    def version_set(self, package: str, versions: VersionList) -> str:
        """Register the set of declared versions of ``package`` that
        satisfy ``versions``; returns the set id for ``version_in_set``."""
        key = (package, str(versions))
        cached = self._vset_ids.get(key)
        if cached is not None:
            if self._touched_vsets is not None:
                self._touched_vsets.add(cached)
            return cached
        set_id = f"vset-{package}-{self._vset_counter}"
        self._vset_counter += 1
        self._vset_ids[key] = set_id
        pkg_cls = self.repo.get(package)
        members: List[Atom] = []
        for declared in pkg_cls.declared_versions():
            if declared.satisfies(versions):
                members.append(atom("version_in_set", s(set_id), s(declared)))
        self.facts.extend(members)
        self._vset_facts[set_id] = members
        if self._touched_vsets is not None:
            self._touched_vsets.add(set_id)
        return set_id

    def _fresh_condition(self, package: str) -> str:
        self._condition_counter += 1
        return f"cond-{package}-{self._condition_counter}"

    # ------------------------------------------------------------------
    # node constraints as body literals
    # ------------------------------------------------------------------
    def node_constraint_literals(self, spec: Spec, node_name: str) -> List[Literal]:
        """Body literals requiring the node ``node_name`` to satisfy the
        node-local constraints of ``spec`` (version/variants/os/target)."""
        node = node_term(node_name)
        lits: List[Literal] = [Literal(atom("attr", s("node"), node))]
        if not spec.versions.is_any:
            set_id = self.version_set(node_name, spec.versions)
            # bind the node's version and require membership
            from ..asp.syntax import Variable

            v = Variable(f"V_{abs(hash((node_name, set_id))) % 10_000}")
            lits.append(Literal(atom("attr", s("version"), node, v)))
            lits.append(Literal(atom("version_in_set", s(set_id), v)))
        for _, variant in spec.variants.items():
            lits.append(
                Literal(
                    atom("attr", s("variant"), node, s(variant.name), s(variant.value))
                )
            )
        if spec.os is not None:
            lits.append(Literal(atom("attr", s("node_os"), node, s(spec.os))))
        if spec.target is not None:
            lits.append(Literal(atom("attr", s("node_target"), node, s(spec.target))))
        return lits

    # ------------------------------------------------------------------
    # package encoding
    # ------------------------------------------------------------------
    def encode_repository(self) -> None:
        for pkg_cls in self.repo:
            self.encode_package(pkg_cls)
        self.encode_virtuals()

    def encode_virtuals(self) -> None:
        for virtual in self.repo.virtual_names():
            self.facts.append(atom("virtual", s(virtual)))
            for provider in self.repo.providers(virtual):
                weight = self.repo.provider_weight(virtual, provider)
                self.facts.append(
                    atom("possible_provider", s(provider), s(virtual), Integer(weight))
                )

    def encode_package(self, pkg_cls: Type[PackageBase]) -> None:
        name = pkg_cls.name
        self.facts.append(atom("pkg", s(name)))
        if not pkg_cls.buildable:
            self.facts.append(atom("not_buildable", s(name)))

        # versions, newest first; weight = preference rank
        for weight, version in enumerate(pkg_cls.declared_versions()):
            self.facts.append(
                atom(
                    "pkg_fact",
                    s(name),
                    Function("version_declared", [s(version), Integer(weight)]),
                )
            )

        # variants
        for decl in pkg_cls.variant_decls:
            self.facts.append(
                atom("pkg_fact", s(name), Function("variant", [s(decl.name)]))
            )
            default = "True" if decl.default is True else (
                "False" if decl.default is False else str(decl.default)
            )
            self.facts.append(
                atom(
                    "pkg_fact",
                    s(name),
                    Function("variant_default", [s(decl.name), s(default)]),
                )
            )
            for value in decl.allowed_values():
                self.facts.append(
                    atom(
                        "pkg_fact",
                        s(name),
                        Function("variant_possible", [s(decl.name), s(value)]),
                    )
                )

        # dependencies
        for decl in pkg_cls.dependency_decls:
            self._encode_dependency(name, decl)

        # provides: every declaration gets a condition (unconditional
        # ones reduce to node presence); the logic program requires a
        # chosen provider to have SOME holding provides-condition
        for decl in pkg_cls.provides_decls:
            cond_id = self._fresh_condition(name)
            body = self._when_body(name, decl.when)
            self.rules.append(Rule(atom("condition_holds", s(cond_id)), body))
            self.facts.append(
                atom("provides_condition", s(name), s(decl.virtual.name), s(cond_id))
            )

        # conflicts: condition is when AND the conflicting constraint
        # (including its ^dependency constraints, matched by node name)
        for decl in pkg_cls.conflict_decls:
            cond_id = self._fresh_condition(name)
            body = self._when_body(name, decl.when)
            body += self.node_constraint_literals(decl.spec, name)[1:]
            for dep in decl.spec.dependencies():
                body += self.node_constraint_literals(dep, dep.name)
            self.rules.append(Rule(atom("condition_holds", s(cond_id)), body))
            self.rules.append(
                Rule(None, [Literal(atom("condition_holds", s(cond_id)))])
            )

        # requires: when condition holds, own node must match the spec
        for decl in pkg_cls.requires_decls:
            cond_id = self._fresh_condition(name)
            body = self._when_body(name, decl.when)
            self.rules.append(Rule(atom("condition_holds", s(cond_id)), body))
            self._impose_node_constraints(cond_id, name, decl.spec)

    def _when_body(self, package: str, when: Optional[Spec]) -> List[Literal]:
        """The condition body for a directive on ``package``: node
        presence plus any ``when`` constraints."""
        node = node_term(package)
        if when is None:
            return [Literal(atom("attr", s("node"), node))]
        if when.name is not None and when.name != package:
            raise EncodingError(
                f"when spec {when} names a different package than {package}"
            )
        body = self.node_constraint_literals(when, package)
        # dependency constraints inside when specs (e.g. when="^mpich")
        for dep in when.dependencies():
            body += self.node_constraint_literals(dep, dep.name)
        return body

    def _encode_dependency(self, package: str, decl) -> None:
        dep_spec = decl.spec
        dep_name = dep_spec.name
        cond_id = self._fresh_condition(package)
        body = self._when_body(package, decl.when)
        self.rules.append(Rule(atom("condition_holds", s(cond_id)), body))
        cond_lit = Literal(atom("condition_holds", s(cond_id)))
        node = node_term(package)

        if self.repo.is_virtual(dep_name):
            if DEPTYPE_LINK_RUN in decl.deptypes:
                self.rules.append(
                    Rule(
                        atom("attr", s("virtual_dependency"), node, s(dep_name)),
                        [cond_lit],
                    )
                )
            # Constraints on virtual deps apply to the chosen provider's
            # *virtual version*, which our repos do not use; reject early.
            if not dep_spec.versions.is_any or len(dep_spec.variants):
                raise EncodingError(
                    f"{package}: constraints on virtual dependency {dep_name!r} "
                    "are not supported"
                )
            return

        if dep_name not in self.repo:
            raise EncodingError(f"{package} depends on unknown package {dep_name!r}")

        dep_node = node_term(dep_name)
        for deptype in decl.deptypes:
            body = [cond_lit]
            if deptype == DEPTYPE_BUILD:
                # Build dependencies only matter for nodes we actually
                # build — reused binaries no longer need them (their
                # build spec retains the provenance, Section 4.1).
                body.append(Literal(atom("build", s(package))))
            self.rules.append(
                Rule(
                    atom("attr", s("depends_on"), node, dep_node, s(deptype)),
                    body,
                )
            )
        self._impose_node_constraints(cond_id, dep_name, dep_spec)

    def _impose_node_constraints(self, cond_id: str, target: str, spec: Spec) -> None:
        """When ``cond_id`` holds, the node ``target`` must satisfy the
        node-local constraints of ``spec``."""
        cond_lit = Literal(atom("condition_holds", s(cond_id)))
        node = node_term(target)
        if not spec.versions.is_any:
            set_id = self.version_set(target, spec.versions)
            from ..asp.syntax import Variable

            v = Variable("ImposedV")
            self.rules.append(
                Rule(
                    None,
                    [
                        cond_lit,
                        Literal(atom("attr", s("version"), node, v)),
                        Literal(atom("version_in_set", s(set_id), v), positive=False),
                    ],
                )
            )
        for _, variant in spec.variants.items():
            self.rules.append(
                Rule(
                    atom("attr", s("variant"), node, s(variant.name), s(variant.value)),
                    [cond_lit],
                )
            )
        if spec.os is not None:
            self.rules.append(
                Rule(atom("attr", s("node_os"), node, s(spec.os)), [cond_lit])
            )
        if spec.target is not None:
            self.rules.append(
                Rule(atom("attr", s("node_target"), node, s(spec.target)), [cond_lit])
            )

    # ------------------------------------------------------------------
    # request (abstract specs) encoding
    # ------------------------------------------------------------------
    def encode_request(
        self,
        roots: Sequence[Spec],
        forbidden: Sequence[str] = (),
        default_os: str = "centos8",
        default_target: str = "skylake",
    ) -> None:
        """Encode user-requested abstract specs.

        Each root package gets a ``root`` fact; node-local constraints
        on the root and its ``^`` dependency constraints become forced
        ``attr`` facts (point values) or integrity constraints (version
        sets).  ``forbidden`` names may not appear as nodes at all.
        """
        self.facts.append(atom("default_os", s(default_os)))
        self.facts.append(atom("default_target", s(default_target)))
        self.facts.append(atom("known_os", s(default_os)))
        self.facts.append(atom("known_target", s(default_target)))
        for root in roots:
            if root.name is None:
                raise EncodingError("cannot concretize an anonymous spec")
            if root.name not in self.repo:
                if self.repo.is_virtual(root.name):
                    raise EncodingError(
                        f"cannot request virtual {root.name!r} directly; "
                        "request a provider"
                    )
                raise EncodingError(f"unknown package {root.name!r}")
            self.facts.append(atom("root", s(root.name)))
            self._force_node_constraints(root)
            build_only = {
                e.spec.name
                for e in root.edges()
                if e.deptypes == frozenset([DEPTYPE_BUILD])
            }
            for dep in root.traverse(root=False):
                if self.repo.is_virtual(dep.name):
                    raise EncodingError(
                        f"constraint on virtual {dep.name!r} not supported; "
                        "constrain a provider instead"
                    )
                if dep.name not in self.repo:
                    raise EncodingError(f"unknown package {dep.name!r}")
                self.facts.append(atom("requested_node", s(dep.name)))
                if dep.name in build_only:
                    # %compiler-style requests add a direct build edge
                    # (no link-run reachability requirement applies)
                    self.facts.append(
                        atom(
                            "attr",
                            s("depends_on"),
                            node_term(root.name),
                            node_term(dep.name),
                            s(DEPTYPE_BUILD),
                        )
                    )
                else:
                    self.facts.append(
                        atom("requested_dep", s(root.name), s(dep.name))
                    )
                self._force_node_constraints(dep)
        for name in forbidden:
            self.rules.append(
                Rule(
                    None,
                    [Literal(atom("attr", s("node"), node_term(name)))],
                )
            )

    def _force_node_constraints(self, spec: Spec) -> None:
        node = node_term(spec.name)
        concrete_v = spec.versions.concrete
        if concrete_v is not None:
            self.facts.append(atom("attr", s("version"), node, s(concrete_v)))
        elif not spec.versions.is_any:
            set_id = self.version_set(spec.name, spec.versions)
            from ..asp.syntax import Variable

            v = Variable("UserV")
            self.rules.append(
                Rule(
                    None,
                    [
                        Literal(atom("attr", s("node"), node)),
                        Literal(atom("attr", s("version"), node, v)),
                        Literal(atom("version_in_set", s(set_id), v), positive=False),
                    ],
                )
            )
        for _, variant in spec.variants.items():
            self.facts.append(
                atom("attr", s("variant"), node, s(variant.name), s(variant.value))
            )
        if spec.os is not None:
            self.facts.append(atom("attr", s("node_os"), node, s(spec.os)))
            self.facts.append(atom("known_os", s(spec.os)))
        if spec.target is not None:
            self.facts.append(atom("attr", s("node_target"), node, s(spec.target)))
            self.facts.append(atom("known_target", s(spec.target)))

    # ------------------------------------------------------------------
    # request snapshots (incremental re-solve)
    # ------------------------------------------------------------------
    def begin_request(self) -> None:
        """Start recording request-only output.

        Used by the incremental concretizer path: one long-lived encoder
        holds the repository encoding (and, crucially, the monotone
        vset/condition id registries so ids never collide across
        solves), while each solve's request is captured and rolled back
        via :meth:`take_request`.
        """
        self._request_mark = (len(self.facts), len(self.rules))
        self._touched_vsets = set()

    def take_request(self) -> Tuple[List[Atom], List[Rule]]:
        """Return ``(facts, rules)`` added since :meth:`begin_request`
        and roll the encoder back.  ``version_in_set`` members of every
        set the request touched are (re-)included: a set registered by
        an earlier, already rolled-back request keeps its id but its
        member facts live nowhere else."""
        fmark, rmark = self._request_mark
        facts = self.facts[fmark:]
        rules = self.rules[rmark:]
        del self.facts[fmark:]
        del self.rules[rmark:]
        for set_id in sorted(self._touched_vsets or ()):
            facts.extend(self._vset_facts.get(set_id, ()))
        self._touched_vsets = None
        return facts, rules

    # ------------------------------------------------------------------
    def into_program(self, program: Program) -> None:
        for fact in self.facts:
            program.add_fact(fact)
        for rule in self.rules:
            program.add_rule(rule)
