"""The concretizer: dependency resolution with reuse and splicing."""

from .concretizer import (
    BatchConcretizationResult,
    ConcretizationResult,
    Concretizer,
    UnsatisfiableError,
)
from .encode import Encoder, EncodingError
from .groundcache import GroundProgramCache, reset_ground_caches
from .reuse import ReuseEncoder, OLD_ENCODING, NEW_ENCODING
from .cansplice import CanSpliceCompiler
from .extract import ModelExtractor, ExtractionError
from .explain import Diagnosis, Constraint, explain_unsat

__all__ = [
    "Concretizer",
    "ConcretizationResult",
    "BatchConcretizationResult",
    "UnsatisfiableError",
    "GroundProgramCache",
    "reset_ground_caches",
    "Encoder",
    "EncodingError",
    "ReuseEncoder",
    "OLD_ENCODING",
    "NEW_ENCODING",
    "CanSpliceCompiler",
    "ModelExtractor",
    "ExtractionError",
    "Diagnosis",
    "Constraint",
    "explain_unsat",
]
