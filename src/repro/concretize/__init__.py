"""The concretizer: dependency resolution with reuse and splicing."""

from .concretizer import Concretizer, ConcretizationResult, UnsatisfiableError
from .encode import Encoder, EncodingError
from .reuse import ReuseEncoder, OLD_ENCODING, NEW_ENCODING
from .cansplice import CanSpliceCompiler
from .extract import ModelExtractor, ExtractionError
from .explain import Diagnosis, Constraint, explain_unsat

__all__ = [
    "Concretizer",
    "ConcretizationResult",
    "UnsatisfiableError",
    "Encoder",
    "EncodingError",
    "ReuseEncoder",
    "OLD_ENCODING",
    "NEW_ENCODING",
    "CanSpliceCompiler",
    "ModelExtractor",
    "ExtractionError",
    "Diagnosis",
    "Constraint",
    "explain_unsat",
]
