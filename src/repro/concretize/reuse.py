"""Encoding of reusable (already-built) specs — old and new styles.

OLD (Section 5.1.2): every attribute of a reusable spec becomes a direct
``imposed_constraint(Hash, ...)`` fact; choosing ``attr("hash", node, H)``
imposes them all, dependencies included, with no room for change.

NEW (Figure 3a): the same tuples become ``hash_attr(Hash, ...)`` facts;
``reuse_new.lp`` recovers ``imposed_constraint`` through one layer of
indirection, which is the hook splicing needs to withhold and replace
the ``hash``/``depends_on`` attributes of spliceable children.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from ..asp.syntax import Atom, String
from ..spec import Spec, DEPTYPE_LINK_RUN

__all__ = ["ReuseEncoder", "OLD_ENCODING", "NEW_ENCODING"]

OLD_ENCODING = "old"
NEW_ENCODING = "new"


def s(text) -> String:
    return String(str(text))


class ReuseEncoder:
    """Encodes a set of reusable concrete specs into ASP facts."""

    def __init__(self, encoding: str = NEW_ENCODING):
        if encoding not in (OLD_ENCODING, NEW_ENCODING):
            raise ValueError(f"unknown reuse encoding {encoding!r}")
        self.encoding = encoding
        self.predicate = (
            "imposed_constraint" if encoding == OLD_ENCODING else "hash_attr"
        )
        self.facts: List[Atom] = []
        self._seen_hashes: Set[str] = set()
        self._oses: Set[str] = set()
        self._targets: Set[str] = set()

    # ------------------------------------------------------------------
    def encode_specs(self, specs: Iterable[Spec]) -> List[Atom]:
        """Encode every node of every spec DAG (deduplicated by hash)."""
        for spec in specs:
            for node in spec.traverse():
                self._encode_node(node)
        for os_name in sorted(self._oses):
            self.facts.append(Atom("known_os", (s(os_name),)))
        for target in sorted(self._targets):
            self.facts.append(Atom("known_target", (s(target),)))
        return self.facts

    def _encode_node(self, node: Spec) -> None:
        h = node.dag_hash()
        if h in self._seen_hashes:
            return
        self._seen_hashes.add(h)
        name = node.name
        pred = self.predicate
        add = self.facts.append

        add(Atom("installed_hash", (s(name), s(h))))
        add(Atom(pred, (s(h), s("version"), s(name), s(node.version))))
        for _, variant in node.variants.items():
            add(
                Atom(
                    pred,
                    (s(h), s("variant"), s(name), s(variant.name), s(variant.value)),
                )
            )
        if node.os is not None:
            add(Atom(pred, (s(h), s("node_os"), s(name), s(node.os))))
            self._oses.add(node.os)
        if node.target is not None:
            add(Atom(pred, (s(h), s("node_target"), s(name), s(node.target))))
            self._targets.add(node.target)
        for edge in node.edges(DEPTYPE_LINK_RUN):
            child = edge.spec
            add(Atom(pred, (s(h), s("depends_on"), s(name), s(child.name))))
            add(Atom(pred, (s(h), s("hash"), s(child.name), s(child.dag_hash()))))

    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self._seen_hashes)
