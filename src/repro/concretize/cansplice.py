"""Compile ``can_splice`` directives into specialized ASP rules (Fig. 4a).

Each directive becomes one rule deriving ``can_splice(node(S), Target,
Hash)``: *there is a node S in the current solution, satisfying the
``when`` constraints, that can replace the installed spec Hash of
package Target, which satisfies the ``target`` constraints.*

``when`` constraints match the live node's ``attr`` atoms; ``target``
constraints match the reusable spec's ``hash_attr`` atoms — the paper
notes this cross-matching is one motivation for the hash_attr encoding.
"""

from __future__ import annotations

from typing import List, Optional, Type

from ..asp.syntax import Atom, Literal, Rule, String, Variable
from ..package.package import PackageBase
from ..package.repository import Repository
from ..spec import Spec
from .encode import Encoder, node_term, s

__all__ = ["CanSpliceCompiler"]


class CanSpliceCompiler:
    """Generates the can_splice rules for every package in a repo."""

    def __init__(self, repo: Repository, encoder: Encoder):
        self.repo = repo
        self.encoder = encoder

    def compile_all(self) -> List[Rule]:
        rules: List[Rule] = []
        for pkg_cls in self.repo:
            for index, decl in enumerate(pkg_cls.can_splice_decls):
                rules.append(self.compile_decl(pkg_cls, decl, index))
        return rules

    def compile_decl(
        self, pkg_cls: Type[PackageBase], decl, index: int
    ) -> Rule:
        splicer = pkg_cls.name
        target_spec: Spec = decl.target
        target_name = target_spec.name
        if target_name is None:
            raise ValueError(
                f"{splicer}: can_splice target must name a package: {target_spec}"
            )
        hash_var = Variable("Hash")
        node = node_term(splicer)

        body: List = [
            Literal(Atom("installed_hash", (s(target_name), hash_var))),
            Literal(Atom("attr", (s("node"), node))),
        ]

        # `when` constraints on the splicing node (live attr atoms)
        when: Optional[Spec] = decl.when
        if when is not None:
            if when.name is not None and when.name != splicer:
                raise ValueError(
                    f"{splicer}: can_splice when spec names {when.name!r}"
                )
            body += self.encoder.node_constraint_literals(when, splicer)[1:]

        # `target` constraints on the installed spec (hash_attr atoms)
        if not target_spec.versions.is_any:
            set_id = self.encoder.version_set(target_name, target_spec.versions)
            v = Variable("TargetV")
            body.append(
                Literal(
                    Atom("hash_attr", (hash_var, s("version"), s(target_name), v))
                )
            )
            body.append(Literal(Atom("version_in_set", (s(set_id), v))))
        for _, variant in target_spec.variants.items():
            body.append(
                Literal(
                    Atom(
                        "hash_attr",
                        (
                            hash_var,
                            s("variant"),
                            s(target_name),
                            s(variant.name),
                            s(variant.value),
                        ),
                    )
                )
            )
        if target_spec.os is not None:
            body.append(
                Literal(
                    Atom(
                        "hash_attr",
                        (hash_var, s("node_os"), s(target_name), s(target_spec.os)),
                    )
                )
            )
        if target_spec.target is not None:
            body.append(
                Literal(
                    Atom(
                        "hash_attr",
                        (
                            hash_var,
                            s("node_target"),
                            s(target_name),
                            s(target_spec.target),
                        ),
                    )
                )
            )

        head = Atom("can_splice", (node, s(target_name), hash_var))
        return Rule(head, body)
