"""Ground-program caching and incremental re-grounding.

Grounding dominates concretization cost ("Using Answer Set Programming
for HPC Dependency Solving" measures the same bottleneck in clingo), so
this module lets repeated solves skip it:

* **Exact-key cache** — a :class:`GroundProgramCache` memoizes whole
  ground programs keyed on the *(logic digest, repo content digest,
  reuse-set digest, request digest)* tuple, in process and optionally
  on disk (``REPRO_GROUND_CACHE_DIR``).  Disk entries are published
  atomically via :func:`fsync_write` with a digest-stamped JSON sidecar
  that is verified before unpickling; anything stale, truncated, or
  foreign is ignored and counted (``concretize.ground_cache_stale``) —
  the same *accelerate, never lie* contract as the buildcache index
  summaries.
* **Incremental base state** — an :class:`IncrementalGroundState` holds
  a monotone :class:`~repro.asp.grounder.Grounder` over the repository
  + logic base so per-solve volatile facts (request, reuse set, forced
  hashes) only pay a delta fixpoint plus re-instantiation, never the
  full base fixpoint.

Both layers are **off by default**: a fresh solve per ``Concretizer``
is what the paper's figure benches time, and a silently shared cache
would corrupt those comparisons.  Opt in per instance or via the
environment knobs above.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import pickle
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..buildcache.backend import fsync_write
from ..obs import metrics
from ..spec import Spec

__all__ = [
    "CACHE_FORMAT",
    "ENV_CACHE",
    "ENV_CACHE_DIR",
    "ENV_INCREMENTAL",
    "GroundCacheEntry",
    "GroundProgramCache",
    "IncrementalGroundState",
    "cache_key",
    "default_cache",
    "incremental_state",
    "logic_digest",
    "package_digest",
    "repo_digest",
    "request_digest",
    "reuse_digest",
    "reset_ground_caches",
]

logger = logging.getLogger(__name__)

#: on-disk entry layout version; bump on any incompatible change
CACHE_FORMAT = 1

ENV_CACHE_DIR = "REPRO_GROUND_CACHE_DIR"
ENV_CACHE = "REPRO_GROUND_CACHE"
ENV_INCREMENTAL = "REPRO_GROUND_INCREMENTAL"

LOGIC_DIR = Path(__file__).parent / "logic"

_TRUTHY = ("1", "true", "yes", "on")


# ----------------------------------------------------------------------
# digests
# ----------------------------------------------------------------------
def _sha(parts: Iterable[str]) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8", "surrogateescape"))
        h.update(b"\x00")
    return h.hexdigest()


def _spec_repr(spec: Optional[Spec]) -> str:
    """Canonical description of an (abstract or concrete) spec DAG —
    everything the encoder reads: node constraints, edges, and hash
    prefixes.  Stable across processes (no ids, no object addresses)."""
    if spec is None:
        return "-"
    parts: List[str] = []
    for node in spec.traverse():
        parts.append(
            "|".join(
                (
                    str(node.name),
                    str(node.versions),
                    str(node.variants),
                    str(node.os),
                    str(node.target),
                    str(node.abstract_hash),
                )
            )
        )
        for edge in node.edges():
            parts.append(
                f">{node.name}->{edge.spec.name}"
                f":{','.join(sorted(edge.deptypes))}"
                f":{getattr(edge, 'virtual', False)}"
            )
    return ";".join(parts)


def _decl_repr(decl) -> str:
    parts = [type(decl).__name__]
    for field in dataclasses.fields(decl):
        value = getattr(decl, field.name)
        if isinstance(value, Spec):
            value = _spec_repr(value)
        parts.append(f"{field.name}={value}")
    return "|".join(parts)


def package_digest(pkg_cls) -> str:
    """Content digest of one package class, cached on the class itself
    (``__dict__``-scoped so subclasses never inherit a stale digest).
    Directives are declared at class-creation time and never mutated, so
    caching is safe even though repositories themselves can grow."""
    cached = pkg_cls.__dict__.get("_repro_content_digest")
    if cached is not None:
        return cached
    parts = [str(pkg_cls.name), str(bool(pkg_cls.buildable))]
    parts.extend(str(v) for v in pkg_cls.declared_versions())
    for attr in (
        "variant_decls",
        "dependency_decls",
        "provides_decls",
        "conflict_decls",
        "requires_decls",
        "can_splice_decls",
    ):
        parts.extend(_decl_repr(d) for d in getattr(pkg_cls, attr, ()))
    digest = _sha(parts)
    pkg_cls._repro_content_digest = digest
    return digest


def repo_digest(repo) -> str:
    """Content digest of a repository *as the encoder sees it*:
    per-package digests in iteration order (condition/vset ids are
    order-dependent) plus provider preferences.  Computed fresh per
    solve — repositories are mutable (``add_mpiabi_replicas``,
    ``provider_preferences``) — but each package class digest is cached,
    so this is O(len(repo)) dict lookups."""
    parts: List[str] = []
    for pkg_cls in repo:
        parts.append(package_digest(pkg_cls))
    parts.append(
        json.dumps(
            {k: list(v) for k, v in sorted(repo.provider_preferences.items())}
        )
    )
    return _sha(parts)


_LOGIC_DIGESTS: Dict[Tuple[str, ...], str] = {}


def logic_digest(names: Sequence[str]) -> str:
    """Digest of the named logic programs (bytes on disk).  The files
    ship with the package and never change within a process."""
    key = tuple(names)
    digest = _LOGIC_DIGESTS.get(key)
    if digest is None:
        h = hashlib.sha256()
        for name in names:
            h.update(name.encode())
            h.update(b"\x00")
            h.update((LOGIC_DIR / name).read_bytes())
        digest = h.hexdigest()
        _LOGIC_DIGESTS[key] = digest
    return digest


def reuse_digest(hashes: Iterable[str]) -> str:
    """Digest of a reuse set given its node DAG hashes.  Prefer a
    precomputed index digest (``ShardedIndex.content_digest()``) when
    the specs come straight from a buildcache — that one is O(1)."""
    return _sha(sorted(hashes))


def request_digest(
    roots: Sequence[Spec],
    forbidden: Sequence[str],
    default_os: str,
    default_target: str,
    encoding: str,
    splicing: bool,
) -> str:
    parts = [_spec_repr(root) for root in roots]
    parts.append("forbidden:" + ",".join(forbidden))
    parts.append(f"os:{default_os}")
    parts.append(f"target:{default_target}")
    parts.append(f"encoding:{encoding}")
    parts.append(f"splicing:{splicing}")
    return _sha(parts)


def cache_key(
    logic: str, repo: str, reuse: str, request: str
) -> str:
    """Compose the exact solve key the ground cache is addressed by."""
    return _sha((logic, repo, reuse, request))


# ----------------------------------------------------------------------
# exact-key ground-program cache
# ----------------------------------------------------------------------
class GroundCacheEntry:
    """One memoized ground program plus solve metadata."""

    __slots__ = ("ground_program", "meta")

    def __init__(self, ground_program, meta: Dict):
        self.ground_program = ground_program
        self.meta = meta


class GroundProgramCache:
    """Bounded in-process LRU over ground programs, with an optional
    disk layer.

    Counters: ``concretize.ground_cache_hits`` / ``_misses`` on every
    :meth:`get`, ``concretize.ground_cache_stale`` for every on-disk
    entry that existed but failed validation (truncated payload, digest
    mismatch, foreign key, bad sidecar) — such entries are *ignored*,
    never trusted, and the solve falls back to grounding from scratch.
    """

    def __init__(self, directory=None, max_memory_entries: int = 8):
        self.directory = Path(directory) if directory else None
        self.max_memory_entries = max_memory_entries
        self._mem: "OrderedDict[str, GroundCacheEntry]" = OrderedDict()
        self._lock = threading.Lock()

    # -- lookup --------------------------------------------------------
    def get(self, key: str) -> Optional[GroundCacheEntry]:
        with self._lock:
            entry = self._mem.get(key)
            if entry is not None:
                self._mem.move_to_end(key)
        if entry is None and self.directory is not None:
            entry = self._load_disk(key)
            if entry is not None:
                self._remember(key, entry)
        if entry is not None:
            metrics.inc("concretize.ground_cache_hits")
        else:
            metrics.inc("concretize.ground_cache_misses")
        return entry

    def put(self, key: str, ground_program, meta: Dict) -> GroundCacheEntry:
        entry = GroundCacheEntry(ground_program, dict(meta))
        self._remember(key, entry)
        if self.directory is not None:
            self._store_disk(key, entry)
        return entry

    def _remember(self, key: str, entry: GroundCacheEntry) -> None:
        with self._lock:
            self._mem[key] = entry
            self._mem.move_to_end(key)
            while len(self._mem) > self.max_memory_entries:
                self._mem.popitem(last=False)

    # -- disk layer ----------------------------------------------------
    def _paths(self, key: str) -> Tuple[Path, Path]:
        base = self.directory / f"ground-{key}"
        return base.with_suffix(".pkl"), base.with_suffix(".json")

    def _stale(self, key: str, reason: str) -> None:
        metrics.inc("concretize.ground_cache_stale")
        logger.warning("ignoring ground-cache entry %s: %s", key[:12], reason)

    def _load_disk(self, key: str) -> Optional[GroundCacheEntry]:
        payload_path, sidecar_path = self._paths(key)
        payload_exists = payload_path.exists()
        sidecar_exists = sidecar_path.exists()
        if not payload_exists and not sidecar_exists:
            return None  # plain miss, not corruption
        if not payload_exists or not sidecar_exists:
            self._stale(key, "payload/sidecar pair incomplete")
            return None
        try:
            sidecar = json.loads(sidecar_path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            self._stale(key, f"unreadable sidecar ({exc})")
            return None
        if not isinstance(sidecar, dict) or sidecar.get("format") != CACHE_FORMAT:
            self._stale(key, f"unsupported format {sidecar!r:.40}")
            return None
        if sidecar.get("key") != key:
            self._stale(key, "sidecar stamped for a different solve key")
            return None
        try:
            payload = payload_path.read_bytes()
        except OSError as exc:
            self._stale(key, f"unreadable payload ({exc})")
            return None
        if hashlib.sha256(payload).hexdigest() != sidecar.get("sha256"):
            self._stale(key, "payload digest mismatch")
            return None
        try:
            # digest verified above, so these are bytes we wrote ourselves
            ground_program = pickle.loads(payload)
        except Exception as exc:  # corrupt-but-digest-matching is hostile
            self._stale(key, f"unpicklable payload ({exc})")
            return None
        meta = sidecar.get("meta")
        return GroundCacheEntry(
            ground_program, meta if isinstance(meta, dict) else {}
        )

    def _store_disk(self, key: str, entry: GroundCacheEntry) -> None:
        payload_path, sidecar_path = self._paths(key)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            payload = pickle.dumps(
                entry.ground_program, protocol=pickle.HIGHEST_PROTOCOL
            )
            sidecar = {
                "format": CACHE_FORMAT,
                "key": key,
                "sha256": hashlib.sha256(payload).hexdigest(),
                "meta": entry.meta,
            }
            # payload first, digest-stamped sidecar last: a reader that
            # sees the sidecar can always validate the payload it names
            fsync_write(payload_path, payload)
            fsync_write(
                sidecar_path, json.dumps(sidecar, sort_keys=True).encode()
            )
        except (OSError, pickle.PicklingError) as exc:
            # the cache accelerates; failing to persist must never fail
            # the solve itself
            logger.warning("could not persist ground-cache entry: %s", exc)


_CACHES: Dict[str, GroundProgramCache] = {}
_CACHES_LOCK = threading.Lock()


def default_cache() -> Optional[GroundProgramCache]:
    """The environment-configured process cache, or None (default off).

    ``REPRO_GROUND_CACHE_DIR`` enables memory + disk; ``REPRO_GROUND_CACHE=1``
    enables the in-process layer only.  Instances are shared per
    directory so separate Concretizers see each other's entries.
    """
    directory = os.environ.get(ENV_CACHE_DIR) or None
    if directory is None and os.environ.get(ENV_CACHE, "").lower() not in _TRUTHY:
        return None
    registry_key = directory or ""
    with _CACHES_LOCK:
        cache = _CACHES.get(registry_key)
        if cache is None:
            cache = GroundProgramCache(directory)
            _CACHES[registry_key] = cache
        return cache


# ----------------------------------------------------------------------
# incremental base-state registry
# ----------------------------------------------------------------------
class IncrementalGroundState:
    """A monotone grounder + long-lived encoder over one base program
    (repository encoding + logic), shared by every solve whose
    (logic digest, repo digest, encoding, splicing) matches."""

    def __init__(self, encoder, grounder):
        self.encoder = encoder
        self.grounder = grounder
        self.lock = threading.RLock()
        #: solves served from this state (introspection/tests)
        self.solves = 0


_MAX_STATES = 4
_STATES: "OrderedDict[Tuple, IncrementalGroundState]" = OrderedDict()
_STATES_LOCK = threading.Lock()


def incremental_state(
    key: Tuple, factory: Callable[[], IncrementalGroundState]
) -> IncrementalGroundState:
    """Fetch (or build via ``factory``) the shared base state for
    ``key``.  The build runs outside the registry lock — a racing
    duplicate build is wasted work, not a correctness problem, and the
    first one registered wins."""
    with _STATES_LOCK:
        state = _STATES.get(key)
        if state is not None:
            _STATES.move_to_end(key)
            return state
    built = factory()
    with _STATES_LOCK:
        state = _STATES.get(key)
        if state is None:
            _STATES[key] = built
            while len(_STATES) > _MAX_STATES:
                _STATES.popitem(last=False)
            state = built
        return state


def reset_ground_caches() -> None:
    """Drop every process-level cache and incremental state (tests)."""
    with _CACHES_LOCK:
        _CACHES.clear()
    with _STATES_LOCK:
        _STATES.clear()
