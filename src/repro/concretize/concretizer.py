"""The concretizer façade: solve abstract specs into concrete ones.

Configuration axes mirror the paper's experiments (Section 6.1.4):

* ``encoding`` — ``"old"`` (direct ``imposed_constraint`` facts) or
  ``"new"`` (``hash_attr`` indirection, Figure 3);
* ``splicing`` — load Figure 4's rules (requires the new encoding);
* the set of reusable specs (a buildcache and/or an install DB).
"""

from __future__ import annotations

import logging
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..asp.api import Control, Model
from ..asp.grounder import Grounder
from ..asp.parser import parse_program
from ..asp.syntax import Atom, Program, Rule
from ..obs import metrics, trace
from ..package.repository import Repository
from ..spec import Spec, parse_one
from . import groundcache
from .cansplice import CanSpliceCompiler
from .encode import Encoder, EncodingError
from .extract import ModelExtractor
from .reuse import ReuseEncoder, NEW_ENCODING, OLD_ENCODING

__all__ = [
    "Concretizer",
    "ConcretizationResult",
    "BatchConcretizationResult",
    "UnsatisfiableError",
]

logger = logging.getLogger(__name__)

LOGIC_DIR = Path(__file__).parent / "logic"

_logic_cache: Dict[str, Program] = {}


def _load_logic(name: str) -> Program:
    """Parse a logic program once per process."""
    program = _logic_cache.get(name)
    if program is None:
        program = parse_program((LOGIC_DIR / name).read_text(encoding="utf-8"))
        _logic_cache[name] = program
    return program


class UnsatisfiableError(RuntimeError):
    """No concretization satisfies the request."""


class ConcretizationResult:
    """Concrete specs plus provenance/metrics for one solve."""

    def __init__(
        self,
        roots: List[Spec],
        by_name: Dict[str, Spec],
        model: Model,
        stats: Dict[str, float],
    ):
        self.roots = roots
        self.by_name = by_name
        self.model = model
        self.stats = stats

    @property
    def specs(self) -> List[Spec]:
        return self.roots

    @property
    def reused(self) -> List[Spec]:
        """Specs reused from the cache/DB (unspliced)."""
        return [
            s for s in self.by_name.values() if not s.spliced and self._has_hash(s)
        ]

    @property
    def spliced(self) -> List[Spec]:
        """Specs whose binaries will be rewired rather than rebuilt."""
        return [s for s in self.by_name.values() if s.spliced]

    @property
    def built(self) -> List[Spec]:
        """Specs that must be built from source."""
        built_names = {
            str(a.args[0].value) for a in self.model.by_predicate("build")
        }
        return [s for name, s in self.by_name.items() if name in built_names]

    def _has_hash(self, spec: Spec) -> bool:
        for atom in self.model.by_predicate("attr"):
            if (
                getattr(atom.args[0], "value", None) == "hash"
                and atom.args[1].args[0].value == spec.name
            ):
                return True
        return False

    @property
    def solve_time(self) -> float:
        return self.stats.get("total_time", 0.0)

    def __repr__(self):
        return (
            f"<ConcretizationResult roots={[s.name for s in self.roots]} "
            f"built={len(self.built)} spliced={len(self.spliced)}>"
        )


class BatchConcretizationResult(ConcretizationResult):
    """One joint solve over many roots, viewable per root.

    All roots share one stable model, so common dependencies *unify*
    (one node per package across the whole environment).  Per-root views
    restrict ``by_name`` to the root's own DAG closure; their
    ``built``/``reused``/``spliced`` breakdowns therefore count only
    nodes reachable from that root.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._per_root: Optional[List[ConcretizationResult]] = None

    def for_root(self, root: Spec) -> ConcretizationResult:
        """The solve restricted to one concrete root's closure."""
        closure = {node.name: node for node in root.traverse()}
        return ConcretizationResult([root], closure, self.model, self.stats)

    @property
    def per_root(self) -> List[ConcretizationResult]:
        if self._per_root is None:
            self._per_root = [self.for_root(root) for root in self.roots]
        return self._per_root

    def __iter__(self):
        return iter(self.per_root)


class Concretizer:
    """Dependency resolver over a repository and a set of reusable specs."""

    def __init__(
        self,
        repo: Repository,
        reusable_specs: Iterable[Spec] = (),
        encoding: str = NEW_ENCODING,
        splicing: bool = False,
        default_os: str = "centos8",
        default_target: str = "skylake",
        ground_cache: Optional[groundcache.GroundProgramCache] = None,
        incremental: Optional[bool] = None,
        reuse_digest: Optional[str] = None,
    ):
        if splicing and encoding != NEW_ENCODING:
            raise ValueError(
                "splicing requires the new (hash_attr) reuse encoding"
            )
        self.repo = repo
        self.encoding = encoding
        self.splicing = splicing
        self.default_os = default_os
        self.default_target = default_target
        self.reusable_specs: List[Spec] = list(reusable_specs)
        #: hash → concrete node (every node of every reusable DAG)
        self._by_hash: Dict[str, Spec] = {}
        for spec in self.reusable_specs:
            for node in spec.traverse():
                self._by_hash.setdefault(node.dag_hash(), node)
        #: exact-key ground-program cache; default resolves from the
        #: environment (REPRO_GROUND_CACHE_DIR / REPRO_GROUND_CACHE) and
        #: is OFF otherwise — fresh-solve timings must stay honest
        self.ground_cache = (
            ground_cache if ground_cache is not None else groundcache.default_cache()
        )
        if incremental is None:
            incremental = (
                os.environ.get(groundcache.ENV_INCREMENTAL, "").lower()
                in ("1", "true", "yes", "on")
            )
        #: opt-in: reuse a shared monotone ground state and only ground
        #: the per-solve delta (request + reuse facts)
        self.incremental = incremental
        #: caller-provided O(1) reuse-set digest (e.g. a buildcache
        #: index's content_digest()); falls back to hashing _by_hash keys
        self._reuse_digest = reuse_digest
        self._reuse_encoder: Optional[ReuseEncoder] = None
        self._reuse_facts: Optional[List[Atom]] = None

    # ------------------------------------------------------------------
    def lookup(self, hash_: str) -> Spec:
        return self._by_hash[hash_]

    def _hash_constraint_facts(self, roots: Sequence[Spec]) -> List[Atom]:
        """Resolve ``name/abc123`` hash-prefix requests against the
        reusable-spec set and force the matching installed hash."""
        from ..asp.syntax import String
        from .encode import node_term

        facts: List[Atom] = []
        for root in roots:
            for node in root.traverse():
                prefix = node.abstract_hash
                if prefix is None:
                    continue
                matches = sorted(
                    h
                    for h, spec in self._by_hash.items()
                    if h.startswith(prefix)
                    and (node.name is None or spec.name == node.name)
                )
                if not matches:
                    raise UnsatisfiableError(
                        f"no installed spec matches {node.name or ''}/{prefix}"
                    )
                if len(matches) > 1:
                    raise UnsatisfiableError(
                        f"hash prefix /{prefix} is ambiguous: "
                        f"{', '.join(m[:10] for m in matches)}"
                    )
                name = node.name or self._by_hash[matches[0]].name
                facts.append(
                    Atom(
                        "attr",
                        (String("hash"), node_term(name), String(matches[0])),
                    )
                )
        return facts

    def explain(
        self,
        specs: Sequence[Union[str, Spec]],
        forbidden: Sequence[str] = (),
    ):
        """Diagnose why a request is unsatisfiable (see
        :func:`repro.concretize.explain.explain_unsat`)."""
        from .explain import explain_unsat

        return explain_unsat(self, specs, forbidden)

    # ------------------------------------------------------------------
    # reuse-set / cache-key helpers
    # ------------------------------------------------------------------
    def _reuse_encoding(self) -> Tuple[ReuseEncoder, List[Atom]]:
        """The reuse facts for this concretizer's (fixed) reuse set,
        encoded once per instance."""
        if self._reuse_encoder is None:
            encoder = ReuseEncoder(self.encoding)
            self._reuse_facts = list(encoder.encode_specs(self.reusable_specs))
            self._reuse_encoder = encoder
        return self._reuse_encoder, self._reuse_facts

    def _logic_names(self) -> List[str]:
        names = ["concretize.lp"]
        if self.encoding == NEW_ENCODING:
            names.append("reuse_new.lp")
        if self.splicing:
            names.append("splice.lp")
        return names

    def _solve_key(
        self, roots: Sequence[Spec], forbidden: Sequence[str]
    ) -> Tuple[str, str, str]:
        """(base-state key..., exact solve key) digests.

        The repo digest is recomputed per solve — repositories mutate
        (replica injection, provider preferences) — but it folds cached
        per-package digests, so it is cheap.  The reuse digest is fixed
        per instance (the spec list is copied at construction).
        """
        logic = groundcache.logic_digest(self._logic_names())
        repo = groundcache.repo_digest(self.repo)
        if self._reuse_digest is None:
            self._reuse_digest = groundcache.reuse_digest(self._by_hash)
        request = groundcache.request_digest(
            roots, forbidden, self.default_os, self.default_target,
            self.encoding, self.splicing,
        )
        return logic, repo, groundcache.cache_key(
            logic, repo, self._reuse_digest, request
        )

    # ------------------------------------------------------------------
    # the three grounding paths
    # ------------------------------------------------------------------
    def _prepare_control(
        self, roots: Sequence[Spec], forbidden: Sequence[str]
    ) -> Tuple[Control, int, float]:
        """Produce a ground, solvable :class:`Control` for the request.

        Three paths, fastest first:

        1. **exact ground-cache hit** — the whole ground program is
           memoized; no setup, no grounding (neither span even opens);
        2. **incremental** — a shared monotone grounder holds the base
           (repo + logic) fixpoint; only the volatile delta (request,
           reuse facts, forced hashes) is ground (``asp.ground_delta``);
        3. **classic** — full setup + ground, exactly the historical
           path; the result feeds the exact cache when one is enabled.

        Returns ``(control, reusable_nodes, setup_seconds)``.
        """
        key = None
        if self.ground_cache is not None or self.incremental:
            logic_d, repo_d, key = self._solve_key(roots, forbidden)
        if self.ground_cache is not None:
            entry = self.ground_cache.get(key)
            if entry is not None:
                logger.info("ground cache hit for %s", [str(r) for r in roots])
                control = Control()
                control.use_ground_program(entry.ground_program)
                return control, int(entry.meta.get("reusable_nodes", 0)), 0.0
        if self.incremental:
            return self._prepare_incremental(
                roots, forbidden, (logic_d, repo_d), key
            )
        return self._prepare_classic(roots, forbidden, key)

    def _prepare_classic(
        self,
        roots: Sequence[Spec],
        forbidden: Sequence[str],
        key: Optional[str],
    ) -> Tuple[Control, int, float]:
        with trace.span("concretize.setup") as setup_span:
            control = Control()
            encoder = Encoder(self.repo)
            encoder.encode_repository()
            encoder.encode_request(
                roots,
                forbidden=forbidden,
                default_os=self.default_os,
                default_target=self.default_target,
            )

            for fact in self._hash_constraint_facts(roots):
                control.add_fact(fact)

            if self.splicing:
                compiler = CanSpliceCompiler(self.repo, encoder)
                for rule in compiler.compile_all():
                    control.add_rule(rule)

            encoder.into_program(control.program)

            reuse, reuse_facts = self._reuse_encoding()
            for fact in reuse_facts:
                control.add_fact(fact)

            for name in self._logic_names():
                control.program.extend(_load_logic(name))
            setup_span.set(reusable_nodes=reuse.node_count)

        control.ground()  # explicit, so the program can be cached pre-solve
        if self.ground_cache is not None and key is not None:
            self.ground_cache.put(
                key,
                control._ground_program,
                {"reusable_nodes": reuse.node_count},
            )
        return control, reuse.node_count, setup_span.duration

    def _build_incremental_state(self) -> groundcache.IncrementalGroundState:
        """Ground the request-independent base once: repository encoding
        (+ splice rules) + logic programs, through the monotone
        possible-atom fixpoint."""
        program = Program()
        encoder = Encoder(self.repo)
        encoder.encode_repository()
        splice_rules: List[Rule] = []
        if self.splicing:
            compiler = CanSpliceCompiler(self.repo, encoder)
            # consume before into_program: compilation may register
            # conditions/vsets on the encoder
            splice_rules = list(compiler.compile_all())
        encoder.into_program(program)
        for rule in splice_rules:
            program.add_rule(rule)
        for name in self._logic_names():
            program.extend(_load_logic(name))
        grounder = Grounder(program, monotone=True)
        grounder.prepare()
        return groundcache.IncrementalGroundState(encoder, grounder)

    def _prepare_incremental(
        self,
        roots: Sequence[Spec],
        forbidden: Sequence[str],
        state_key_parts: Tuple[str, str],
        key: Optional[str],
    ) -> Tuple[Control, int, float]:
        logic_d, repo_d = state_key_parts
        state = groundcache.incremental_state(
            (logic_d, repo_d, self.encoding, self.splicing),
            self._build_incremental_state,
        )
        with state.lock:
            with trace.span("concretize.setup") as setup_span:
                encoder = state.encoder
                encoder.begin_request()
                try:
                    encoder.encode_request(
                        roots,
                        forbidden=forbidden,
                        default_os=self.default_os,
                        default_target=self.default_target,
                    )
                finally:
                    volatile_facts, volatile_rules = encoder.take_request()
                volatile_facts.extend(self._hash_constraint_facts(roots))
                reuse, reuse_facts = self._reuse_encoding()
                volatile_facts.extend(reuse_facts)
                setup_span.set(reusable_nodes=reuse.node_count)
            with trace.span("asp.ground_delta") as delta_span:
                ground_program = state.grounder.ground_with(
                    volatile_facts, volatile_rules
                )
                delta_span.set(**ground_program.stats())
            state.solves += 1
        metrics.inc("concretize.incremental_resolves")
        control = Control()
        control.use_ground_program(ground_program)
        if self.ground_cache is not None and key is not None:
            self.ground_cache.put(
                key, ground_program, {"reusable_nodes": reuse.node_count}
            )
        return control, reuse.node_count, setup_span.duration

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def solve(
        self,
        specs: Sequence[Union[str, Spec]],
        forbidden: Sequence[str] = (),
    ) -> ConcretizationResult:
        """Concretize the requested abstract specs jointly.

        Raises :class:`UnsatisfiableError` when no valid configuration
        exists (e.g. conflicting constraints, or a forbidden package
        that cannot be avoided).
        """
        roots = [parse_one(s) if isinstance(s, str) else s for s in specs]
        logger.info(
            "concretizing %s (encoding=%s, splicing=%s, %d reusable)",
            [str(r) for r in roots], self.encoding, self.splicing,
            len(self.reusable_specs),
        )

        with trace.span(
            "concretize.solve",
            roots=[str(r) for r in roots],
            encoding=self.encoding,
            splicing=self.splicing,
        ) as outer:
            control, reusable_nodes, setup_seconds = self._prepare_control(
                roots, forbidden
            )
            result = control.solve()
            if not result.satisfiable:
                raise UnsatisfiableError(
                    f"no concretization for {[str(r) for r in roots]}"
                )

            with trace.span("concretize.extract"):
                extractor = ModelExtractor(result.model, self.lookup)
                by_name = extractor.extract()
            concrete_roots = [by_name[r.name] for r in roots]

        stats = dict(result.stats)
        stats["setup_time"] = setup_seconds
        stats["total_time"] = outer.duration
        stats["reusable_nodes"] = reusable_nodes
        logger.info(
            "concretized in %.3fs (setup %.3fs, ground %.3fs, "
            "translate %.3fs, solve %.3fs)",
            outer.duration, setup_seconds, stats.get("ground_time", 0.0),
            stats.get("translate_time", 0.0), stats.get("solve_time", 0.0),
        )
        return ConcretizationResult(concrete_roots, by_name, result.model, stats)

    def solve_all(
        self,
        specs: Sequence[Union[str, Spec]],
        forbidden: Sequence[str] = (),
    ) -> BatchConcretizationResult:
        """Concretize all roots in ONE ASP program (environment scale).

        The repository and reuse facts are encoded once and every ground
        rule is shared across roots, so per-root amortized cost drops
        superlinearly versus sequential single-root solves; shared
        dependencies unify into a single node.  Returns a
        :class:`BatchConcretizationResult` — the joint solve plus
        per-root DAG views.
        """
        roots = [parse_one(s) if isinstance(s, str) else s for s in specs]
        metrics.inc("concretize.batch_roots", len(roots))
        result = self.solve(roots, forbidden=forbidden)
        return BatchConcretizationResult(
            result.roots, result.by_name, result.model, result.stats
        )
