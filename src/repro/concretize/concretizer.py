"""The concretizer façade: solve abstract specs into concrete ones.

Configuration axes mirror the paper's experiments (Section 6.1.4):

* ``encoding`` — ``"old"`` (direct ``imposed_constraint`` facts) or
  ``"new"`` (``hash_attr`` indirection, Figure 3);
* ``splicing`` — load Figure 4's rules (requires the new encoding);
* the set of reusable specs (a buildcache and/or an install DB).
"""

from __future__ import annotations

import logging
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..asp.api import Control, Model
from ..asp.parser import parse_program
from ..asp.syntax import Program
from ..obs import trace
from ..package.repository import Repository
from ..spec import Spec, parse_one
from .cansplice import CanSpliceCompiler
from .encode import Encoder, EncodingError
from .extract import ModelExtractor
from .reuse import ReuseEncoder, NEW_ENCODING, OLD_ENCODING

__all__ = ["Concretizer", "ConcretizationResult", "UnsatisfiableError"]

logger = logging.getLogger(__name__)

LOGIC_DIR = Path(__file__).parent / "logic"

_logic_cache: Dict[str, Program] = {}


def _load_logic(name: str) -> Program:
    """Parse a logic program once per process."""
    program = _logic_cache.get(name)
    if program is None:
        program = parse_program((LOGIC_DIR / name).read_text(encoding="utf-8"))
        _logic_cache[name] = program
    return program


class UnsatisfiableError(RuntimeError):
    """No concretization satisfies the request."""


class ConcretizationResult:
    """Concrete specs plus provenance/metrics for one solve."""

    def __init__(
        self,
        roots: List[Spec],
        by_name: Dict[str, Spec],
        model: Model,
        stats: Dict[str, float],
    ):
        self.roots = roots
        self.by_name = by_name
        self.model = model
        self.stats = stats

    @property
    def specs(self) -> List[Spec]:
        return self.roots

    @property
    def reused(self) -> List[Spec]:
        """Specs reused from the cache/DB (unspliced)."""
        return [
            s for s in self.by_name.values() if not s.spliced and self._has_hash(s)
        ]

    @property
    def spliced(self) -> List[Spec]:
        """Specs whose binaries will be rewired rather than rebuilt."""
        return [s for s in self.by_name.values() if s.spliced]

    @property
    def built(self) -> List[Spec]:
        """Specs that must be built from source."""
        built_names = {
            str(a.args[0].value) for a in self.model.by_predicate("build")
        }
        return [s for name, s in self.by_name.items() if name in built_names]

    def _has_hash(self, spec: Spec) -> bool:
        for atom in self.model.by_predicate("attr"):
            if (
                getattr(atom.args[0], "value", None) == "hash"
                and atom.args[1].args[0].value == spec.name
            ):
                return True
        return False

    @property
    def solve_time(self) -> float:
        return self.stats.get("total_time", 0.0)

    def __repr__(self):
        return (
            f"<ConcretizationResult roots={[s.name for s in self.roots]} "
            f"built={len(self.built)} spliced={len(self.spliced)}>"
        )


class Concretizer:
    """Dependency resolver over a repository and a set of reusable specs."""

    def __init__(
        self,
        repo: Repository,
        reusable_specs: Iterable[Spec] = (),
        encoding: str = NEW_ENCODING,
        splicing: bool = False,
        default_os: str = "centos8",
        default_target: str = "skylake",
    ):
        if splicing and encoding != NEW_ENCODING:
            raise ValueError(
                "splicing requires the new (hash_attr) reuse encoding"
            )
        self.repo = repo
        self.encoding = encoding
        self.splicing = splicing
        self.default_os = default_os
        self.default_target = default_target
        self.reusable_specs: List[Spec] = list(reusable_specs)
        #: hash → concrete node (every node of every reusable DAG)
        self._by_hash: Dict[str, Spec] = {}
        for spec in self.reusable_specs:
            for node in spec.traverse():
                self._by_hash.setdefault(node.dag_hash(), node)

    # ------------------------------------------------------------------
    def lookup(self, hash_: str) -> Spec:
        return self._by_hash[hash_]

    def _resolve_hash_constraints(self, roots: Sequence[Spec], control) -> None:
        """Resolve ``name/abc123`` hash-prefix requests against the
        reusable-spec set and force the matching installed hash."""
        from ..asp.syntax import Atom, String
        from .encode import node_term

        for root in roots:
            for node in root.traverse():
                prefix = node.abstract_hash
                if prefix is None:
                    continue
                matches = sorted(
                    h
                    for h, spec in self._by_hash.items()
                    if h.startswith(prefix)
                    and (node.name is None or spec.name == node.name)
                )
                if not matches:
                    raise UnsatisfiableError(
                        f"no installed spec matches {node.name or ''}/{prefix}"
                    )
                if len(matches) > 1:
                    raise UnsatisfiableError(
                        f"hash prefix /{prefix} is ambiguous: "
                        f"{', '.join(m[:10] for m in matches)}"
                    )
                name = node.name or self._by_hash[matches[0]].name
                control.add_fact(
                    Atom(
                        "attr",
                        (String("hash"), node_term(name), String(matches[0])),
                    )
                )

    def explain(
        self,
        specs: Sequence[Union[str, Spec]],
        forbidden: Sequence[str] = (),
    ):
        """Diagnose why a request is unsatisfiable (see
        :func:`repro.concretize.explain.explain_unsat`)."""
        from .explain import explain_unsat

        return explain_unsat(self, specs, forbidden)

    def solve(
        self,
        specs: Sequence[Union[str, Spec]],
        forbidden: Sequence[str] = (),
    ) -> ConcretizationResult:
        """Concretize the requested abstract specs jointly.

        Raises :class:`UnsatisfiableError` when no valid configuration
        exists (e.g. conflicting constraints, or a forbidden package
        that cannot be avoided).
        """
        roots = [parse_one(s) if isinstance(s, str) else s for s in specs]
        logger.info(
            "concretizing %s (encoding=%s, splicing=%s, %d reusable)",
            [str(r) for r in roots], self.encoding, self.splicing,
            len(self.reusable_specs),
        )

        with trace.span(
            "concretize.solve",
            roots=[str(r) for r in roots],
            encoding=self.encoding,
            splicing=self.splicing,
        ) as outer:
            with trace.span("concretize.setup") as setup_span:
                control = Control()
                encoder = Encoder(self.repo)
                encoder.encode_repository()
                encoder.encode_request(
                    roots,
                    forbidden=forbidden,
                    default_os=self.default_os,
                    default_target=self.default_target,
                )

                self._resolve_hash_constraints(roots, control)

                if self.splicing:
                    compiler = CanSpliceCompiler(self.repo, encoder)
                    for rule in compiler.compile_all():
                        control.add_rule(rule)

                encoder.into_program(control.program)

                reuse = ReuseEncoder(self.encoding)
                for fact in reuse.encode_specs(self.reusable_specs):
                    control.add_fact(fact)

                control.program.extend(_load_logic("concretize.lp"))
                if self.encoding == NEW_ENCODING:
                    control.program.extend(_load_logic("reuse_new.lp"))
                if self.splicing:
                    control.program.extend(_load_logic("splice.lp"))
                setup_span.set(reusable_nodes=reuse.node_count)

            result = control.solve()
            if not result.satisfiable:
                raise UnsatisfiableError(
                    f"no concretization for {[str(r) for r in roots]}"
                )

            with trace.span("concretize.extract"):
                extractor = ModelExtractor(result.model, self.lookup)
                by_name = extractor.extract()
            concrete_roots = [by_name[r.name] for r in roots]

        stats = dict(result.stats)
        stats["setup_time"] = setup_span.duration
        stats["total_time"] = outer.duration
        stats["reusable_nodes"] = reuse.node_count
        logger.info(
            "concretized in %.3fs (setup %.3fs, ground %.3fs, "
            "translate %.3fs, solve %.3fs)",
            outer.duration, setup_span.duration, stats.get("ground_time", 0.0),
            stats.get("translate_time", 0.0), stats.get("solve_time", 0.0),
        )
        return ConcretizationResult(concrete_roots, by_name, result.model, stats)
