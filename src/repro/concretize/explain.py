"""UNSAT diagnosis: which request constraints make a solve impossible?

The ASP core reports bare unsatisfiability; users need to know *why*.
This module implements relaxation-based diagnosis (the practical
strategy Spack's error machinery also follows): re-solve with subsets
of the user's constraints removed and report

* a **culprit set** — a minimal-ish set of request constraints whose
  removal restores satisfiability (deletion-filter minimization), or
* the verdict that the request is unsatisfiable even unconstrained
  (something in the package repository itself, e.g. a ``conflicts``
  with no escape or an unbuildable package).

Each candidate constraint is one *clause* of the request: a root's
version pin, one variant setting, one ``^dep`` constraint (as a whole),
one ``%build`` dep, or one forbidden package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..spec import Spec, parse_one, DEPTYPE_BUILD

__all__ = ["Diagnosis", "Constraint", "explain_unsat"]


@dataclass(frozen=True)
class Constraint:
    """One removable clause of the user's request."""

    root_index: int
    kind: str  # "version" | "variant" | "dep" | "builddep" | "forbidden" | "hash"
    description: str

    def __str__(self) -> str:
        return self.description


@dataclass
class Diagnosis:
    """The outcome of an UNSAT diagnosis."""

    satisfiable_when_relaxed: bool
    culprits: List[Constraint] = field(default_factory=list)

    def explain(self) -> str:
        if not self.satisfiable_when_relaxed:
            return (
                "the request is unsatisfiable even without your "
                "constraints: the package definitions themselves forbid "
                "it (a conflict, an unbuildable package, or no usable "
                "versions)"
            )
        if not self.culprits:
            return "the request is satisfiable (no diagnosis needed)"
        lines = ["the request becomes satisfiable after removing:"]
        for culprit in self.culprits:
            lines.append(f"  - {culprit.description}")
        return "\n".join(lines)


def _decompose(roots: Sequence[Spec], forbidden: Sequence[str]) -> List[Constraint]:
    constraints: List[Constraint] = []
    for i, root in enumerate(roots):
        if not root.versions.is_any:
            constraints.append(
                Constraint(i, "version", f"{root.name}@{root.versions}")
            )
        for _, variant in root.variants.items():
            constraints.append(
                Constraint(i, "variant", f"{root.name} {variant}")
            )
        if root.abstract_hash:
            constraints.append(
                Constraint(i, "hash", f"{root.name}/{root.abstract_hash}")
            )
        for edge in root.edges():
            sigil = "%" if edge.deptypes == frozenset([DEPTYPE_BUILD]) else "^"
            kind = "builddep" if sigil == "%" else "dep"
            constraints.append(
                Constraint(
                    i, kind, f"{root.name} {sigil}{edge.spec.format(deps=False)}"
                )
            )
    for name in forbidden:
        constraints.append(Constraint(-1, "forbidden", f"forbidden: {name}"))
    return constraints


def _rebuild_request(
    roots: Sequence[Spec],
    forbidden: Sequence[str],
    removed: set,
    constraints: List[Constraint],
) -> Tuple[List[Spec], List[str]]:
    """The request with the ``removed`` constraint subset stripped."""
    removed_set = {constraints[i] for i in removed}
    new_roots: List[Spec] = []
    for i, root in enumerate(roots):
        spec = Spec(root.name)
        mine = {c for c in removed_set if c.root_index == i}
        kinds_gone = {(c.kind, c.description) for c in mine}

        def keep(kind: str, description: str) -> bool:
            return (kind, description) not in kinds_gone

        if not root.versions.is_any and keep("version", f"{root.name}@{root.versions}"):
            from ..spec import VersionList

            spec.versions = VersionList(list(root.versions.constraints))
        for _, variant in root.variants.items():
            if keep("variant", f"{root.name} {variant}"):
                spec.variants.set(variant.name, variant.value)
        if root.abstract_hash and keep("hash", f"{root.name}/{root.abstract_hash}"):
            spec.abstract_hash = root.abstract_hash
        spec.os = root.os
        spec.target = root.target
        for edge in root.edges():
            sigil = "%" if edge.deptypes == frozenset([DEPTYPE_BUILD]) else "^"
            kind = "builddep" if sigil == "%" else "dep"
            if keep(kind, f"{root.name} {sigil}{edge.spec.format(deps=False)}"):
                spec.add_dependency(edge.spec.copy(), tuple(edge.deptypes))
        new_roots.append(spec)
    new_forbidden = [
        name
        for name in forbidden
        if Constraint(-1, "forbidden", f"forbidden: {name}") not in removed_set
    ]
    return new_roots, new_forbidden


def explain_unsat(
    concretizer,
    specs: Sequence,
    forbidden: Sequence[str] = (),
    max_solves: int = 40,
) -> Diagnosis:
    """Diagnose an unsatisfiable request by constraint relaxation.

    Deletion-filter: start from "all constraints removed" (must be SAT,
    else the repo itself is at fault), then add constraints back one at
    a time; each one that flips the request back to UNSAT is a culprit
    and stays removed.  O(#constraints) solves, capped by
    ``max_solves``.
    """
    from .concretizer import UnsatisfiableError

    roots = [parse_one(s) if isinstance(s, str) else s for s in specs]
    constraints = _decompose(roots, forbidden)

    def solvable(removed: set) -> bool:
        relaxed_roots, relaxed_forbidden = _rebuild_request(
            roots, forbidden, removed, constraints
        )
        try:
            concretizer.solve(relaxed_roots, forbidden=relaxed_forbidden)
            return True
        except UnsatisfiableError:
            return False

    solves = 0
    all_removed = set(range(len(constraints)))
    if not solvable(all_removed):
        return Diagnosis(satisfiable_when_relaxed=False)
    solves += 1

    # add constraints back; keep the ones that re-break the request out
    removed = set(all_removed)
    culprits: List[Constraint] = []
    for index in range(len(constraints)):
        if solves >= max_solves:
            break
        trial = removed - {index}
        solves += 1
        if solvable(trial):
            removed = trial  # harmless constraint: restore it
        else:
            culprits.append(constraints[index])  # culprit: keep removed
    return Diagnosis(satisfiable_when_relaxed=True, culprits=culprits)
