"""Setup shim for environments without the `wheel` package.

The project is fully described by pyproject.toml; this file exists so
`pip install -e . --no-build-isolation --no-use-pep517` works offline
(the sandbox has setuptools but neither `wheel` nor network access).
"""

from setuptools import setup

setup()
